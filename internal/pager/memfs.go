package pager

import (
	"fmt"
	"os"
	"sync"
)

// MemFS is an in-memory FS that records every mutating operation, so
// crash-recovery tests can rebuild the filesystem as it would look if
// the process had died after any prefix of those operations — including
// a torn (half-applied) final write, and optionally with all
// not-yet-fsynced writes dropped (simulating lost OS cache).
//
// Model notes: renames are applied atomically and durably at replay
// (journalling-filesystem semantics); file data writes are the part
// that can be lost or torn. That is the failure surface the WAL
// protocol must defend, and it is strictly harsher on data writes than
// a real fsync-respecting disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	ops   []fsOp
}

type memFile struct {
	name    string
	synced  []byte
	pending []memWrite
}

type memWrite struct {
	off  int64
	data []byte
}

type fsOpKind int

const (
	opCreate fsOpKind = iota
	opWrite
	opTruncate
	opSync
	opRename
	opRemove
	opSyncDir
)

type fsOp struct {
	kind fsOpKind
	name string // file (or old path for rename, dir for syncdir)
	to   string // rename target
	off  int64
	data []byte
	size int64 // truncate
}

// NewMemFS returns an empty recording filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// CrashPoints returns the number of recorded operations; CrashClone
// accepts any k in [0, CrashPoints()].
func (m *MemFS) CrashPoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ops)
}

// CrashClone rebuilds the filesystem as of operation k: the first k
// recorded operations are replayed onto a fresh MemFS. If torn is true
// and operation k is a data write, half of it is applied too — a torn
// write cut mid-record. If dropUnsynced is true, writes not covered by
// an fsync within the replayed prefix are discarded, modelling lost OS
// cache on power failure.
func (m *MemFS) CrashClone(k int, torn, dropUnsynced bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k > len(m.ops) {
		k = len(m.ops)
	}
	c := NewMemFS()
	for i := 0; i < k; i++ {
		c.apply(m.ops[i])
	}
	if torn && k < len(m.ops) {
		if op := m.ops[k]; op.kind == opWrite && len(op.data) > 1 {
			half := op.data[:len(op.data)/2]
			c.apply(fsOp{kind: opWrite, name: op.name, off: op.off, data: half})
		}
	}
	if dropUnsynced {
		for _, f := range c.files {
			f.pending = nil
		}
	}
	// The clone starts a fresh history; recovery's own writes are not
	// part of the crashed prefix.
	c.ops = nil
	return c
}

// apply replays one op onto m (no recording).
func (m *MemFS) apply(op fsOp) {
	switch op.kind {
	case opCreate:
		m.files[op.name] = &memFile{name: op.name}
	case opWrite:
		if f := m.files[op.name]; f != nil {
			d := make([]byte, len(op.data))
			copy(d, op.data)
			f.pending = append(f.pending, memWrite{off: op.off, data: d})
		}
	case opTruncate:
		if f := m.files[op.name]; f != nil {
			f.synced = clipTo(f.view(), op.size)
			f.pending = nil
		}
	case opSync:
		if f := m.files[op.name]; f != nil {
			f.fold()
		}
	case opRename:
		if f := m.files[op.name]; f != nil {
			delete(m.files, op.name)
			f.name = op.to
			m.files[op.to] = f
		}
	case opRemove:
		delete(m.files, op.name)
	case opSyncDir:
		// Renames are modelled durable on apply; nothing to do.
	}
}

func clipTo(b []byte, size int64) []byte {
	if int64(len(b)) > size {
		return b[:size]
	}
	grown := make([]byte, size)
	copy(grown, b)
	return grown
}

// view materialises the file as the OS would read it back: synced bytes
// with pending writes applied on top.
func (f *memFile) view() []byte {
	size := int64(len(f.synced))
	for _, w := range f.pending {
		if end := w.off + int64(len(w.data)); end > size {
			size = end
		}
	}
	out := make([]byte, size)
	copy(out, f.synced)
	for _, w := range f.pending {
		copy(out[w.off:], w.data)
	}
	return out
}

// fold makes pending writes durable.
func (f *memFile) fold() {
	f.synced = f.view()
	f.pending = nil
}

func (m *MemFS) record(op fsOp) { m.ops = append(m.ops, op) }

// MkdirAll implements FS; MemFS has no directories.
func (m *MemFS) MkdirAll(string) error { return nil }

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, f: f}, nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.record(fsOp{kind: opCreate, name: name})
	f := &memFile{name: name}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// Exists implements FS.
func (m *MemFS) Exists(name string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[name]
	return ok, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	m.record(fsOp{kind: opRemove, name: name})
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	m.record(fsOp{kind: opRename, name: oldpath, to: newpath})
	delete(m.files, oldpath)
	f.name = newpath
	m.files[newpath] = f
	return nil
}

// SyncDir implements FS.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.record(fsOp{kind: opSyncDir, name: dir})
	return nil
}

// memHandle is an open MemFS file. Handles stay valid across Rename,
// like POSIX file descriptors.
type memHandle struct {
	fs *MemFS
	f  *memFile
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	v := h.f.view()
	if off >= int64(len(v)) {
		return 0, fmt.Errorf("pager: memfs read past EOF of %s", h.f.name)
	}
	n := copy(p, v[off:])
	if n < len(p) {
		return n, fmt.Errorf("pager: memfs short read of %s", h.f.name)
	}
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	d := make([]byte, len(p))
	copy(d, p)
	h.fs.record(fsOp{kind: opWrite, name: h.f.name, off: off, data: d})
	h.f.pending = append(h.f.pending, memWrite{off: off, data: d})
	return len(p), nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.f.view())), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.fs.record(fsOp{kind: opSync, name: h.f.name})
	h.f.fold()
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.fs.record(fsOp{kind: opTruncate, name: h.f.name, size: size})
	h.f.synced = clipTo(h.f.view(), size)
	h.f.pending = nil
	return nil
}

func (h *memHandle) Close() error { return nil }
