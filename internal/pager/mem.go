package pager

import "fmt"

// Mem is the in-memory pager: a dense slice of pages with no I/O, no
// WAL and no eviction. Begin/Record/Commit are no-ops, so the embedded
// path pays nothing for the durability seam. Mem is not internally
// synchronised — the owning Heap's lock coordinates all access, exactly
// as it did for the former pages []*page slice.
type Mem struct {
	payload int
	// frames[0] is nil so page id 0 is never used.
	frames []*Frame
}

// NewMem returns an empty in-memory space with the given page payload
// size (0 selects DefaultPageSize; the minimum is 64, matching the
// storage layer's historical clamp).
func NewMem(payloadSize int) *Mem {
	if payloadSize <= 0 {
		payloadSize = DefaultPageSize
	}
	if payloadSize < 64 {
		payloadSize = 64
	}
	return &Mem{payload: payloadSize, frames: []*Frame{nil}}
}

// PayloadSize implements Space.
func (m *Mem) PayloadSize() int { return m.payload }

// Pages implements Space.
func (m *Mem) Pages() []uint32 {
	ids := make([]uint32, 0, len(m.frames)-1)
	for i := 1; i < len(m.frames); i++ {
		ids = append(ids, uint32(i))
	}
	return ids
}

// Pin implements Space. Mem frames carry no pool state, so Unpin is a
// no-op and Pin is a bounds check plus a slice load.
func (m *Mem) Pin(page uint32) (*Frame, error) {
	if page == 0 || int(page) >= len(m.frames) {
		return nil, fmt.Errorf("%w: page %d", ErrBadPage, page)
	}
	return m.frames[page], nil
}

// Begin implements Space.
func (m *Mem) Begin() Tx { return 0 }

// Allocate implements Space.
func (m *Mem) Allocate(_ Tx, kind uint16) (*Frame, error) {
	f := &Frame{
		id:   uint32(len(m.frames)),
		kind: kind,
		data: make([]byte, m.payload),
	}
	m.frames = append(m.frames, f)
	return f, nil
}

// Record implements Space; in-memory edits need no redo.
func (m *Mem) Record(Tx, *Frame, ...Patch) {}

// RecordImage implements Space.
func (m *Mem) RecordImage(Tx, *Frame) {}

// Commit implements Space.
func (m *Mem) Commit(Tx) error { return nil }

// Rollback implements Space.
func (m *Mem) Rollback(Tx) {}
