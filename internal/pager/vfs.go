package pager

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem seam the durable store runs on. The default is
// OSFS; tests substitute MemFS to replay crash prefixes
// deterministically. Only the operations the store needs are modelled.
type FS interface {
	// MkdirAll ensures dir (and parents) exist.
	MkdirAll(dir string) error
	// Open opens an existing file for read/write; it fails if the file
	// does not exist.
	Open(name string) (File, error)
	// Create creates or truncates a file for read/write.
	Create(name string) (File, error)
	// Exists reports whether the file exists.
	Exists(name string) (bool, error)
	// Remove deletes a file; removing a missing file is an error.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// File is the random-access file handle the store uses.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current file length.
	Size() (int64, error)
	// Sync flushes written data to stable storage.
	Sync() error
	// Truncate sets the file length.
	Truncate(size int64) error
	// Close releases the handle.
	Close() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Exists(name string) (bool, error) {
	_, err := os.Stat(name)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// AtomicWriteFile replaces path with data using the temp-file → fsync →
// rename → fsync(dir) protocol, so a crash at any point leaves either
// the old content or the new, never a truncated mix. Every durable file
// the module persists outside the WAL (snapshots, checkpoint WAL
// rotation, the catalog) goes through this shape.
func AtomicWriteFile(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return fmt.Errorf("pager: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
