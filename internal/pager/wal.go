package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log format (little endian).
//
// File header (28 bytes):
//
//	magic "STFWAL01" | version u32 | pageSize u32 | startLSN u64 | crc u32
//
// startLSN is the LSN the log begins at; it advances on every
// checkpoint rotation, which swaps in a fresh header via temp-file +
// rename. The header never changes in place.
//
// Record framing:
//
//	length u32 | type u8 | lsn u64 | tx u64 | body | crc u32
//
// length counts everything after itself (type through crc); crc is
// CRC-32C over type through body. Recovery reads records until the file
// ends, a length field is implausible, or a crc mismatches — everything
// from the first bad frame on is a torn tail and is ignored.
//
// Record bodies:
//
//	alloc:  space u32 | page u32 | kind u16       (page starts zeroed)
//	patch:  page u32 | n u16 | n × (off u16, len u16, bytes)
//	image:  space u32 | page u32 | kind u16 | payload (full page)
//	commit: empty — marks every earlier record of the same tx committed
const (
	walMagic   = "STFWAL01"
	walVersion = 1
	walHdrSize = 8 + 4 + 4 + 8 + 4

	// Record frame: type u8 + lsn u64 + tx u64 … crc u32.
	walRecMin = 1 + 8 + 8 + 4
	// maxWALRecord caps the length field before any allocation; it
	// comfortably exceeds a full-page image at the largest page size.
	maxWALRecord = 1 << 17
)

// Record types.
const (
	recAlloc  byte = 1
	recPatch  byte = 2
	recImage  byte = 3
	recCommit byte = 4
)

// castagnoli is the CRC-32C table shared by WAL records and page
// frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errWALEnd marks the end of the valid record prefix (clean EOF, torn
// tail, or corrupt frame — recovery treats them identically).
var errWALEnd = errors.New("pager: end of valid WAL prefix")

// walRecord is one decoded WAL record.
type walRecord struct {
	typ   byte
	lsn   uint64
	tx    uint64
	space uint32 // alloc, image
	page  uint32 // alloc, patch, image
	kind  uint16 // alloc, image
	// patches hold copies of the logged bytes (decode) or may alias
	// caller memory (encode).
	patches []Patch
	image   []byte
}

// encodeWALHeader builds the 28-byte file header.
func encodeWALHeader(pageSize int, startLSN uint64) []byte {
	h := make([]byte, walHdrSize)
	copy(h, walMagic)
	binary.LittleEndian.PutUint32(h[8:], walVersion)
	binary.LittleEndian.PutUint32(h[12:], uint32(pageSize))
	binary.LittleEndian.PutUint64(h[16:], startLSN)
	binary.LittleEndian.PutUint32(h[24:], crc32.Checksum(h[:24], castagnoli))
	return h
}

// decodeWALHeader validates a file header and returns its page size and
// start LSN.
func decodeWALHeader(h []byte) (pageSize int, startLSN uint64, err error) {
	if len(h) < walHdrSize {
		return 0, 0, fmt.Errorf("%w: WAL header truncated (%d bytes)", ErrCorrupt, len(h))
	}
	if string(h[:8]) != walMagic {
		return 0, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, h[:8])
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != walVersion {
		return 0, 0, fmt.Errorf("%w: WAL version %d (want %d)", ErrCorrupt, v, walVersion)
	}
	if crc := binary.LittleEndian.Uint32(h[24:]); crc != crc32.Checksum(h[:24], castagnoli) {
		return 0, 0, fmt.Errorf("%w: WAL header checksum mismatch", ErrCorrupt)
	}
	return int(binary.LittleEndian.Uint32(h[12:])), binary.LittleEndian.Uint64(h[16:]), nil
}

// appendWALRecord encodes r onto dst and returns the extended slice.
func appendWALRecord(dst []byte, r *walRecord) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	start := len(dst)
	dst = append(dst, r.typ)
	dst = binary.LittleEndian.AppendUint64(dst, r.lsn)
	dst = binary.LittleEndian.AppendUint64(dst, r.tx)
	switch r.typ {
	case recAlloc:
		dst = binary.LittleEndian.AppendUint32(dst, r.space)
		dst = binary.LittleEndian.AppendUint32(dst, r.page)
		dst = binary.LittleEndian.AppendUint16(dst, r.kind)
	case recPatch:
		dst = binary.LittleEndian.AppendUint32(dst, r.page)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.patches)))
		for _, p := range r.patches {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Off))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Data)))
			dst = append(dst, p.Data...)
		}
	case recImage:
		dst = binary.LittleEndian.AppendUint32(dst, r.space)
		dst = binary.LittleEndian.AppendUint32(dst, r.page)
		dst = binary.LittleEndian.AppendUint16(dst, r.kind)
		dst = append(dst, r.image...)
	case recCommit:
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-start))
	return dst
}

// decodeWALRecord decodes one record from the head of b, returning the
// record and the bytes consumed. It returns errWALEnd when b does not
// begin with a complete, checksum-valid frame. Every count is bounded
// before it sizes an allocation: forged records cannot over-allocate.
func decodeWALRecord(b []byte) (walRecord, int, error) {
	var r walRecord
	if len(b) < 4 {
		return r, 0, errWALEnd
	}
	l := binary.LittleEndian.Uint32(b)
	if l < walRecMin || l > maxWALRecord {
		return r, 0, errWALEnd
	}
	n := int(l)
	if len(b) < 4+n {
		return r, 0, errWALEnd
	}
	frame := b[4 : 4+n]
	body := frame[:n-4]
	if crc := binary.LittleEndian.Uint32(frame[n-4:]); crc != crc32.Checksum(body, castagnoli) {
		return r, 0, errWALEnd
	}
	r.typ = body[0]
	r.lsn = binary.LittleEndian.Uint64(body[1:])
	r.tx = binary.LittleEndian.Uint64(body[9:])
	rest := body[17:]
	switch r.typ {
	case recAlloc:
		if len(rest) != 10 {
			return r, 0, errWALEnd
		}
		r.space = binary.LittleEndian.Uint32(rest)
		r.page = binary.LittleEndian.Uint32(rest[4:])
		r.kind = binary.LittleEndian.Uint16(rest[8:])
	case recPatch:
		if len(rest) < 6 {
			return r, 0, errWALEnd
		}
		r.page = binary.LittleEndian.Uint32(rest)
		count := int(binary.LittleEndian.Uint16(rest[4:]))
		rest = rest[6:]
		// Each patch needs at least its 4-byte header; a count that
		// cannot fit in the remaining bytes is rejected before the
		// slice is sized.
		if count > len(rest)/4 {
			return r, 0, errWALEnd
		}
		r.patches = make([]Patch, 0, count)
		for i := 0; i < count; i++ {
			if len(rest) < 4 {
				return r, 0, errWALEnd
			}
			off := int(binary.LittleEndian.Uint16(rest))
			dlen := int(binary.LittleEndian.Uint16(rest[2:]))
			rest = rest[4:]
			if dlen > len(rest) {
				return r, 0, errWALEnd
			}
			data := make([]byte, dlen)
			copy(data, rest[:dlen])
			rest = rest[dlen:]
			r.patches = append(r.patches, Patch{Off: off, Data: data})
		}
		if len(rest) != 0 {
			return r, 0, errWALEnd
		}
	case recImage:
		if len(rest) < 10 {
			return r, 0, errWALEnd
		}
		r.space = binary.LittleEndian.Uint32(rest)
		r.page = binary.LittleEndian.Uint32(rest[4:])
		r.kind = binary.LittleEndian.Uint16(rest[8:])
		r.image = make([]byte, len(rest)-10)
		copy(r.image, rest[10:])
	case recCommit:
		if len(rest) != 0 {
			return r, 0, errWALEnd
		}
	default:
		return r, 0, errWALEnd
	}
	return r, 4 + n, nil
}
