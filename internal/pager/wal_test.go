package pager

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// walBytes reads the current wal.log content from fs.
func walBytes(t *testing.T, fs *MemFS) []byte {
	t.Helper()
	f, err := fs.Open("data/wal.log")
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatalf("wal size: %v", err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("read wal: %v", err)
		}
	}
	return buf
}

// rewriteWAL replaces wal.log with buf (durably, outside the recorded
// crash model — these tests hand-craft corruption).
func rewriteWAL(t *testing.T, fs *MemFS, buf []byte) {
	t.Helper()
	f, err := fs.Create("data/wal.log")
	if err != nil {
		t.Fatalf("create wal: %v", err)
	}
	if len(buf) > 0 {
		if _, err := f.WriteAt(buf, 0); err != nil {
			t.Fatalf("write wal: %v", err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync wal: %v", err)
	}
}

// walSetup builds a store with three committed pages and returns the
// filesystem with the WAL still un-checkpointed (the page data lives
// only in the log).
func walSetup(t *testing.T) *MemFS {
	t.Helper()
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	sp := s.Space(1)
	for i := 0; i < 3; i++ {
		put(t, sp, byte(0x10*(i+1)))
	}
	// No Close, no Checkpoint: simulate a SIGKILL with all data in the
	// WAL. Drop unsynced writes for good measure (SyncAlways means the
	// log survives).
	return fs.CrashClone(fs.CrashPoints(), false, true)
}

func TestRecoveryTornTail(t *testing.T) {
	fs := walSetup(t)
	buf := walBytes(t, fs)
	// Cut the last record in half: pages 1 and 2 must survive, the torn
	// record is ignored.
	cut := len(buf) - 10
	rewriteWAL(t, fs, buf[:cut])

	s := testOpen(t, fs, Options{})
	defer s.Close()
	sp := s.Space(1)
	checkPage(t, sp, 1, 0x10)
	checkPage(t, sp, 2, 0x20)
	// Page 3's commit fell inside the torn tail: it must be absent, not
	// half-present.
	if f, err := sp.Pin(3); err == nil {
		f.Unpin()
		t.Fatalf("page 3 survived a torn commit")
	}
}

func TestRecoveryBadCRC(t *testing.T) {
	fs := walSetup(t)
	buf := walBytes(t, fs)
	// Flip one payload byte in the middle of the log: the valid prefix
	// ends there, everything after is ignored even if well-framed.
	mid := walHdrSize + (len(buf)-walHdrSize)/2
	buf[mid] ^= 0xFF
	rewriteWAL(t, fs, buf)

	s := testOpen(t, fs, Options{})
	defer s.Close()
	sp := s.Space(1)
	// Whatever committed before the corruption must be intact and
	// complete; pages after it must be wholly absent.
	for _, id := range sp.Pages() {
		checkPage(t, sp, id, byte(0x10*id))
	}
	if n := len(sp.Pages()); n >= 3 {
		t.Fatalf("all %d pages survived despite a corrupt WAL byte", n)
	}
}

func TestRecoveryHalfCheckpoint(t *testing.T) {
	// Build a store, checkpoint it, then crash at every operation point
	// inside the checkpoint window: recovery must always converge to
	// the pre-checkpoint committed state.
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	sp := s.Space(1)
	for i := 0; i < 5; i++ {
		put(t, sp, byte(i+1))
	}
	preCkpt := fs.CrashPoints()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	end := fs.CrashPoints()
	for k := preCkpt; k <= end; k++ {
		for _, torn := range []bool{false, true} {
			clone := fs.CrashClone(k, torn, true)
			s2 := testOpen(t, clone, Options{})
			sp2 := s2.Space(1)
			for id := uint32(1); id <= 5; id++ {
				checkPage(t, sp2, id, byte(id))
			}
			s2.Close()
		}
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{typ: recAlloc, lsn: 1, tx: 7, space: 3, page: 9, kind: KindSlotted},
		{typ: recPatch, lsn: 2, tx: 7, page: 9, patches: []Patch{
			{Off: 0, Data: []byte{1, 2, 3}},
			{Off: 100, Data: []byte{9}},
		}},
		{typ: recImage, lsn: 3, tx: 8, space: 3, page: 10, kind: KindJumboHead, image: bytes.Repeat([]byte{0xAB}, 492)},
		{typ: recCommit, lsn: 4, tx: 7},
	}
	var buf []byte
	for i := range recs {
		buf = appendWALRecord(buf, &recs[i])
	}
	off := 0
	for i := range recs {
		got, n, err := decodeWALRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		want := recs[i]
		if got.typ != want.typ || got.lsn != want.lsn || got.tx != want.tx ||
			got.space != want.space || got.page != want.page || got.kind != want.kind {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		if len(got.patches) != len(want.patches) {
			t.Fatalf("record %d: %d patches, want %d", i, len(got.patches), len(want.patches))
		}
		for j := range got.patches {
			if got.patches[j].Off != want.patches[j].Off || !bytes.Equal(got.patches[j].Data, want.patches[j].Data) {
				t.Fatalf("record %d patch %d mismatch", i, j)
			}
		}
		if !bytes.Equal(got.image, want.image) {
			t.Fatalf("record %d image mismatch", i)
		}
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestWALDecodeRejectsOversizedLength(t *testing.T) {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:], maxWALRecord+1)
	if _, _, err := decodeWALRecord(b[:]); err == nil {
		t.Fatal("oversized length field accepted")
	}
}
