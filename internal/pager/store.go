package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spatialtf/internal/telemetry"
)

// Page file format (little endian). The superblock occupies the first
// page-size bytes and is written once at creation, never rewritten —
// all mutable metadata lives in the WAL, so the superblock cannot tear:
//
//	magic "STFPAGE1" | version u32 | pageSize u32 | crc u32 | zero pad
//
// Page id i lives at byte offset i*pageSize (ids start at 1; id 0 is
// the superblock, matching the storage layer's invalid-page
// convention). Each on-disk page carries a 20-byte frame header ahead
// of its payload:
//
//	lsn u64 | crc u32 | space u32 | kind u16 | flags u16
//
// lsn is the LSN of the newest WAL record applied to the page — the
// "page LSN" recovery compares against to keep redo idempotent. crc is
// CRC-32C over the rest of the header plus the payload, so a torn page
// write is detected on load.
const (
	pageMagic    = "STFPAGE1"
	pageVersion  = 1
	frameHdrSize = 20

	superMagicEnd = 8
	superCRCOff   = 16

	minPageSize = 512
	maxPageSize = 1 << 16
)

// SyncMode selects when the WAL is fsynced.
type SyncMode int

const (
	// SyncAlways fsyncs the WAL on every Commit: no committed work is
	// lost on power failure.
	SyncAlways SyncMode = iota
	// SyncBatch writes the WAL on every Commit but fsyncs at most once
	// per Options.SyncInterval (group commit): a crash can lose the
	// last interval's worth of commits, never corrupt the store.
	SyncBatch
	// SyncOff never fsyncs outside checkpoints; a crash can lose or
	// (for multi-page batches) partially apply recent commits.
	SyncOff
)

// Options configure a Store.
type Options struct {
	// PageSize in bytes; 0 selects DefaultPageSize. Must be a value in
	// [512, 65536] and is fixed at store creation — reopening with a
	// different value fails.
	PageSize int
	// PoolPages caps resident pages; 0 selects 1024, the minimum is 16.
	PoolPages int
	// Sync selects the WAL fsync policy.
	Sync SyncMode
	// SyncInterval is the SyncBatch group-commit window; 0 selects
	// 25ms.
	SyncInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint when the WAL
	// exceeds this size; 0 selects 16 MiB, negative disables.
	CheckpointBytes int64
	// FS is the filesystem seam; nil selects OSFS.
	FS FS
	// Telemetry, when non-nil, receives the pool and WAL metrics.
	Telemetry *telemetry.Registry
}

// Store is the durable pager: one page file plus one WAL, shared by any
// number of spaces (tables). All methods are safe for concurrent use.
type Store struct {
	mu sync.Mutex

	fs       FS
	dir      string
	pageSize int
	payload  int
	pageFile File
	wal      File
	walPath  string

	poolCap int
	frames  map[uint32]*Frame // resident pages by id
	slots   []*Frame          // pool slot table (clock order)
	hand    int

	pageCount uint32
	spaces    map[uint32]map[uint32]struct{}

	nextLSN  uint64
	nextTX   uint64
	inflight map[Tx][]uint32 // open txs -> pages they allocated

	wbuf      []byte // WAL records not yet written to the file
	walSize   int64  // bytes written to the WAL file
	syncMode  SyncMode
	syncEvery time.Duration
	lastSync  time.Time
	ckptBytes int64

	closed bool

	mHits        *telemetry.Counter
	mMisses      *telemetry.Counter
	mEvictions   *telemetry.Counter
	mWritebacks  *telemetry.Counter
	mWALBytes    *telemetry.Counter
	mCheckpoints *telemetry.Counter
	mCkptPages   *telemetry.Counter
	mFsync       *telemetry.Histogram
}

// Open opens (creating if absent) the store in dir, running crash
// recovery if the WAL holds committed work, and checkpointing so the
// store starts from a clean WAL.
func Open(dir string, opts Options) (*Store, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < minPageSize || opts.PageSize > maxPageSize {
		return nil, fmt.Errorf("pager: page size %d outside [%d, %d]", opts.PageSize, minPageSize, maxPageSize)
	}
	if opts.PoolPages == 0 {
		opts.PoolPages = 1024
	}
	if opts.PoolPages < 16 {
		opts.PoolPages = 16
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = 25 * time.Millisecond
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 16 << 20
	}
	if opts.FS == nil {
		opts.FS = OSFS
	}
	s := &Store{
		fs:        opts.FS,
		dir:       dir,
		pageSize:  opts.PageSize,
		payload:   opts.PageSize - frameHdrSize,
		poolCap:   opts.PoolPages,
		frames:    make(map[uint32]*Frame),
		spaces:    make(map[uint32]map[uint32]struct{}),
		nextLSN:   1,
		nextTX:    1,
		inflight:  make(map[Tx][]uint32),
		syncMode:  opts.Sync,
		syncEvery: opts.SyncInterval,
		ckptBytes: opts.CheckpointBytes,
		walPath:   filepath.Join(dir, "wal.log"),
	}
	reg := opts.Telemetry
	s.mHits = reg.NewCounter("pool_hits_total", "buffer-pool pins served from memory")
	s.mMisses = reg.NewCounter("pool_misses_total", "buffer-pool pins that read the page file")
	s.mEvictions = reg.NewCounter("pool_evictions_total", "pages evicted from the buffer pool")
	s.mWritebacks = reg.NewCounter("pool_writebacks_total", "dirty pages written back outside checkpoints")
	s.mWALBytes = reg.NewCounter("wal_bytes_total", "bytes appended to the write-ahead log")
	s.mCheckpoints = reg.NewCounter("checkpoints_total", "checkpoints completed")
	s.mCkptPages = reg.NewCounter("checkpoint_pages_total", "dirty pages written by checkpoints")
	s.mFsync = reg.NewHistogram("wal_fsync_seconds", "WAL fsync latency", nil)

	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	if err := s.openPageFile(); err != nil {
		return nil, err
	}
	// A wal.tmp is a checkpoint rotation that never renamed; the real
	// wal.log is still authoritative.
	if ok, _ := s.fs.Exists(s.walPath + ".tmp"); ok {
		if err := s.fs.Remove(s.walPath + ".tmp"); err != nil {
			s.pageFile.Close()
			return nil, err
		}
	}
	if err := s.openWALAndRecover(); err != nil {
		s.pageFile.Close()
		return nil, err
	}
	// Start from a clean WAL: replayed pages reach the page file and
	// the log rotates (no transactions can be in flight yet).
	if err := s.Checkpoint(); err != nil {
		s.pageFile.Close()
		s.wal.Close()
		return nil, err
	}
	return s, nil
}

// openPageFile opens or creates pages.db, validates the superblock and
// header-scans the allocated pages into the space map.
func (s *Store) openPageFile() error {
	path := filepath.Join(s.dir, "pages.db")
	exists, err := s.fs.Exists(path)
	if err != nil {
		return err
	}
	if !exists {
		f, err := s.fs.Create(path)
		if err != nil {
			return err
		}
		super := make([]byte, s.pageSize)
		copy(super, pageMagic)
		binary.LittleEndian.PutUint32(super[superMagicEnd:], pageVersion)
		binary.LittleEndian.PutUint32(super[superMagicEnd+4:], uint32(s.pageSize))
		binary.LittleEndian.PutUint32(super[superCRCOff:], crc32.Checksum(super[:superCRCOff], castagnoli))
		if _, err := f.WriteAt(super, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			f.Close()
			return err
		}
		s.pageFile = f
		return nil
	}
	f, err := s.fs.Open(path)
	if err != nil {
		return err
	}
	hdr := make([]byte, superCRCOff+4)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return fmt.Errorf("%w: superblock unreadable: %v", ErrCorrupt, err)
	}
	if string(hdr[:superMagicEnd]) != pageMagic {
		f.Close()
		return fmt.Errorf("%w: bad page-file magic %q", ErrCorrupt, hdr[:superMagicEnd])
	}
	if v := binary.LittleEndian.Uint32(hdr[superMagicEnd:]); v != pageVersion {
		f.Close()
		return fmt.Errorf("%w: page-file version %d (want %d)", ErrCorrupt, v, pageVersion)
	}
	if crc := binary.LittleEndian.Uint32(hdr[superCRCOff:]); crc != crc32.Checksum(hdr[:superCRCOff], castagnoli) {
		f.Close()
		return fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	if ps := int(binary.LittleEndian.Uint32(hdr[superMagicEnd+4:])); ps != s.pageSize {
		f.Close()
		return fmt.Errorf("pager: store has page size %d, opened with %d", ps, s.pageSize)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	// A partial trailing page (torn file extension) is ignored here; if
	// a committed WAL record references it, recovery rebuilds it.
	s.pageCount = uint32(size/int64(s.pageSize)) - 1
	hbuf := make([]byte, frameHdrSize)
	for id := uint32(1); id <= s.pageCount; id++ {
		if _, err := f.ReadAt(hbuf, int64(id)*int64(s.pageSize)); err != nil {
			continue
		}
		space := binary.LittleEndian.Uint32(hbuf[12:])
		if kind := binary.LittleEndian.Uint16(hbuf[16:]); kind != KindFree {
			s.addToSpace(space, id)
		}
	}
	s.pageFile = f
	return nil
}

func (s *Store) addToSpace(space, page uint32) {
	set := s.spaces[space]
	if set == nil {
		set = make(map[uint32]struct{})
		s.spaces[space] = set
	}
	set[page] = struct{}{}
}

func (s *Store) dropFromSpaces(page uint32) {
	for _, set := range s.spaces {
		delete(set, page)
	}
}

// Space returns the Space view for the given space id. Ids are assigned
// by the catalog layer above; the store only segregates pages by them.
func (s *Store) Space(id uint32) Space { return &storeSpace{s: s, id: id} }

// PayloadSize returns the usable bytes per page.
func (s *Store) PayloadSize() int { return s.payload }

// pageOffset returns the file offset of page id.
func (s *Store) pageOffset(id uint32) int64 { return int64(id) * int64(s.pageSize) }

// --- pinning and the buffer pool ---

func (s *Store) pin(space, page uint32) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if page == 0 || page > s.pageCount {
		return nil, fmt.Errorf("%w: page %d", ErrBadPage, page)
	}
	if f := s.frames[page]; f != nil {
		if f.space != space {
			return nil, fmt.Errorf("%w: page %d belongs to space %d, not %d", ErrBadPage, page, f.space, space)
		}
		f.pins++
		f.ref = true
		s.mHits.Inc()
		return f, nil
	}
	s.mMisses.Inc()
	//spatiallint:ignore hotalloc a buffer-pool miss must materialise the frame; hits return the resident frame
	f, err := s.loadLocked(page)
	if err != nil {
		return nil, err
	}
	if f.space != space {
		s.unpinLocked(f)
		return nil, fmt.Errorf("%w: page %d belongs to space %d, not %d", ErrBadPage, page, f.space, space)
	}
	return f, nil
}

// loadLocked reads page id from the file into a fresh pinned frame,
// verifying its checksum.
func (s *Store) loadLocked(id uint32) (*Frame, error) {
	slot, err := s.grabSlotLocked()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, s.pageSize)
	if _, err := s.pageFile.ReadAt(raw, s.pageOffset(id)); err != nil {
		s.slots[slot] = nil
		return nil, fmt.Errorf("%w: read page %d: %v", ErrCorrupt, id, err)
	}
	if crc := binary.LittleEndian.Uint32(raw[8:]); crc != pageCRC(raw) {
		s.slots[slot] = nil
		return nil, fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, id)
	}
	f := &Frame{
		id:    id,
		space: binary.LittleEndian.Uint32(raw[12:]),
		kind:  binary.LittleEndian.Uint16(raw[16:]),
		lsn:   binary.LittleEndian.Uint64(raw[0:]),
		data:  raw[frameHdrSize:],
		raw:   raw,
		store: s,
		pins:  1,
		ref:   true,
		slot:  slot,
	}
	s.slots[slot] = f
	s.frames[id] = f
	return f, nil
}

// pageCRC computes the on-disk page checksum: CRC-32C over the LSN and
// everything after the crc field.
func pageCRC(raw []byte) uint32 {
	crc := crc32.Update(0, castagnoli, raw[:8])
	return crc32.Update(crc, castagnoli, raw[12:])
}

// grabSlotLocked finds a free pool slot, evicting if the pool is full.
func (s *Store) grabSlotLocked() (int, error) {
	if len(s.slots) < s.poolCap {
		s.slots = append(s.slots, nil)
		return len(s.slots) - 1, nil
	}
	for i := range s.slots {
		if s.slots[i] == nil {
			return i, nil
		}
	}
	return s.evictLocked()
}

// evictLocked runs the clock over the pool and evicts one victim,
// returning its slot. Victims must be unpinned and must not hold
// uncommitted data (no-steal: the WAL is redo-only, so an uncommitted
// page image must never reach the file).
func (s *Store) evictLocked() (int, error) {
	for sweep := 0; sweep < 2*len(s.slots); sweep++ {
		i := s.hand
		s.hand = (s.hand + 1) % len(s.slots)
		f := s.slots[i]
		if f == nil {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if _, open := s.inflight[f.tx]; open {
				continue
			}
			// WAL-before-data: the records covering this page must be
			// durable before its image may overwrite the file copy.
			if err := s.flushWALLocked(s.syncMode != SyncOff); err != nil {
				return 0, err
			}
			if err := s.writeFrameLocked(f); err != nil {
				return 0, err
			}
			s.mWritebacks.Inc()
		}
		delete(s.frames, f.id)
		s.slots[i] = nil
		s.mEvictions.Inc()
		return i, nil
	}
	return 0, ErrPoolExhausted
}

// writeFrameLocked stamps the frame header and writes the page to the
// file. The frame stays dirty-tracked by the caller.
func (s *Store) writeFrameLocked(f *Frame) error {
	binary.LittleEndian.PutUint64(f.raw[0:], f.lsn)
	binary.LittleEndian.PutUint32(f.raw[12:], f.space)
	binary.LittleEndian.PutUint16(f.raw[16:], f.kind)
	binary.LittleEndian.PutUint16(f.raw[18:], 0)
	binary.LittleEndian.PutUint32(f.raw[8:], pageCRC(f.raw))
	if _, err := s.pageFile.WriteAt(f.raw, s.pageOffset(f.id)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", f.id, err)
	}
	f.dirty = false
	return nil
}

func (s *Store) unpin(f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unpinLocked(f)
}

func (s *Store) unpinLocked(f *Frame) {
	if f.pins > 0 {
		f.pins--
	}
}

// --- transactions and the WAL ---

func (s *Store) begin() Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := Tx(s.nextTX)
	s.nextTX++
	s.inflight[tx] = nil
	return tx
}

func (s *Store) allocate(tx Tx, space uint32, kind uint16) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	slot, err := s.grabSlotLocked()
	if err != nil {
		return nil, err
	}
	id := s.pageCount + 1
	s.pageCount = id
	raw := make([]byte, s.pageSize)
	f := &Frame{
		id:    id,
		space: space,
		kind:  kind,
		data:  raw[frameHdrSize:],
		raw:   raw,
		store: s,
		pins:  1,
		ref:   true,
		dirty: true,
		// The alloc record is a full description of the zeroed page, so
		// later patches in this WAL generation need no separate image.
		imaged: true,
		tx:     tx,
		slot:   slot,
	}
	s.slots[slot] = f
	s.frames[id] = f
	s.addToSpace(space, id)
	s.inflight[tx] = append(s.inflight[tx], id)
	f.lsn = s.appendLocked(&walRecord{typ: recAlloc, tx: uint64(tx), space: space, page: id, kind: kind})
	return f, nil
}

// appendLocked assigns the next LSN, encodes the record into the WAL
// buffer, and returns the LSN.
func (s *Store) appendLocked(r *walRecord) uint64 {
	r.lsn = s.nextLSN
	s.nextLSN++
	before := len(s.wbuf)
	s.wbuf = appendWALRecord(s.wbuf, r)
	s.mWALBytes.Add(int64(len(s.wbuf) - before))
	return r.lsn
}

func (s *Store) record(tx Tx, f *Frame, patches []Patch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !f.imaged {
		// First touch since the last WAL rotation: log the whole page
		// so a torn page-file write can always be rebuilt (full-page
		// writes, as in PostgreSQL).
		f.lsn = s.appendLocked(&walRecord{typ: recImage, tx: uint64(tx), space: f.space, page: f.id, kind: f.kind, image: f.data})
		f.imaged = true
	} else {
		f.lsn = s.appendLocked(&walRecord{typ: recPatch, tx: uint64(tx), page: f.id, patches: patches})
	}
	f.tx = tx
	f.dirty = true
}

func (s *Store) recordImage(tx Tx, f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.lsn = s.appendLocked(&walRecord{typ: recImage, tx: uint64(tx), space: f.space, page: f.id, kind: f.kind, image: f.data})
	f.imaged = true
	f.tx = tx
	f.dirty = true
}

func (s *Store) commit(tx Tx) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.appendLocked(&walRecord{typ: recCommit, tx: uint64(tx)})
	delete(s.inflight, tx)
	sync := false
	switch s.syncMode {
	case SyncAlways:
		sync = true
	case SyncBatch:
		sync = time.Since(s.lastSync) >= s.syncEvery
	}
	if err := s.flushWALLocked(sync); err != nil {
		return err
	}
	if s.ckptBytes > 0 && s.walSize > s.ckptBytes {
		return s.checkpointLocked()
	}
	return nil
}

func (s *Store) rollback(tx Tx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.inflight[tx] {
		s.dropFromSpaces(id)
		if f := s.frames[id]; f != nil {
			// The page was never published; drop the frame so a later
			// pin fails instead of serving it. The id itself is leaked
			// (allocation is append-only), exactly as a crashed
			// allocation would leak it.
			f.dirty = false
			f.kind = KindFree
			if f.pins == 0 {
				delete(s.frames, id)
				s.slots[f.slot] = nil
			}
		}
	}
	delete(s.inflight, tx)
}

// flushWALLocked writes buffered records to the WAL file and optionally
// fsyncs it.
func (s *Store) flushWALLocked(sync bool) error {
	if len(s.wbuf) > 0 {
		if _, err := s.wal.WriteAt(s.wbuf, s.walSize); err != nil {
			return fmt.Errorf("pager: write WAL: %w", err)
		}
		s.walSize += int64(len(s.wbuf))
		s.wbuf = s.wbuf[:0]
	}
	if sync {
		start := time.Now()
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("pager: sync WAL: %w", err)
		}
		s.mFsync.Observe(time.Since(start).Seconds())
		s.lastSync = time.Now()
	}
	return nil
}

// --- checkpointing ---

// Checkpoint makes the page file catch up with the committed WAL: the
// log is flushed and fsynced, committed dirty pages are written back,
// the page file is fsynced, and — if no transaction is in flight — the
// WAL is rotated to a fresh, empty generation via temp-file → fsync →
// rename → fsync(dir). With transactions in flight the rotation is
// skipped (their records must survive), making the checkpoint
// incremental.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if err := s.flushWALLocked(true); err != nil {
		return err
	}
	wrote := 0
	for _, f := range s.slots {
		if f == nil || !f.dirty {
			continue
		}
		if _, open := s.inflight[f.tx]; open {
			continue
		}
		if err := s.writeFrameLocked(f); err != nil {
			return err
		}
		wrote++
	}
	if wrote > 0 {
		if err := s.pageFile.Sync(); err != nil {
			return fmt.Errorf("pager: sync page file: %w", err)
		}
	}
	s.mCheckpoints.Inc()
	s.mCkptPages.Add(int64(wrote))
	if len(s.inflight) > 0 {
		return nil
	}
	return s.rotateWALLocked()
}

// rotateWALLocked atomically replaces the WAL with an empty generation
// starting at the current LSN. Only legal when every pool page is clean
// (just checkpointed) and no transaction is in flight.
func (s *Store) rotateWALLocked() error {
	tmp := s.walPath + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	hdr := encodeWALHeader(s.pageSize, s.nextLSN)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return fmt.Errorf("pager: write WAL header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: sync new WAL: %w", err)
	}
	if err := s.fs.Rename(tmp, s.walPath); err != nil {
		f.Close()
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.wal.Close()
	s.wal = f
	s.walSize = walHdrSize
	for _, fr := range s.slots {
		if fr != nil {
			fr.imaged = false
		}
	}
	return nil
}

// Close checkpoints and releases the store. The data directory can be
// reopened without replay work.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.checkpointLocked()
	s.closed = true
	s.mu.Unlock()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if cerr := s.pageFile.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- the per-space view ---

type storeSpace struct {
	s  *Store
	id uint32
}

func (sp *storeSpace) PayloadSize() int { return sp.s.payload }

func (sp *storeSpace) Pages() []uint32 {
	sp.s.mu.Lock()
	defer sp.s.mu.Unlock()
	set := sp.s.spaces[sp.id]
	ids := make([]uint32, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (sp *storeSpace) Pin(page uint32) (*Frame, error) { return sp.s.pin(sp.id, page) }

func (sp *storeSpace) Begin() Tx { return sp.s.begin() }

func (sp *storeSpace) Allocate(tx Tx, kind uint16) (*Frame, error) {
	return sp.s.allocate(tx, sp.id, kind)
}

func (sp *storeSpace) Record(tx Tx, f *Frame, patches ...Patch) { sp.s.record(tx, f, patches) }

func (sp *storeSpace) RecordImage(tx Tx, f *Frame) { sp.s.recordImage(tx, f) }

func (sp *storeSpace) Commit(tx Tx) error { return sp.s.commit(tx) }

func (sp *storeSpace) Rollback(tx Tx) { sp.s.rollback(tx) }
