package pager

import (
	"sync"
	"testing"
)

// TestCheckpointUnderLoad rotates the WAL in a tight loop while writer
// goroutines commit fresh pages and reader goroutines pin and read
// existing ones. Checkpoint quiesces the pool behind the store mutex,
// so this is the lane where a latch ordering mistake between the pool,
// the WAL, and the space map shows up under -race.
func TestCheckpointUnderLoad(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{PoolPages: 16})
	sp := s.Space(1)

	var mu sync.Mutex
	var ids []uint32
	for i := 0; i < 8; i++ {
		ids = append(ids, put(t, sp, byte(i)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := sp.Begin()
				f, err := sp.Allocate(tx, KindSlotted)
				if err != nil {
					t.Errorf("Allocate: %v", err)
					return
				}
				d := f.Data()
				for j := range d {
					d[j] = byte(i)
				}
				sp.Record(tx, f, Patch{Off: 0, Data: d})
				id := f.ID()
				f.Unpin()
				if err := sp.Commit(tx); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
			}
		}()
	}

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				id := ids[i%len(ids)]
				mu.Unlock()
				i++
				f, err := sp.Pin(id)
				if err != nil {
					t.Errorf("Pin(%d): %v", id, err)
					return
				}
				_ = f.Data()[0]
				f.Unpin()
			}
		}(r)
	}

	for i := 0; i < 50; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	total := len(ids)
	mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Everything committed before, during, and after the checkpoints
	// must survive a reopen.
	s2 := testOpen(t, fs, Options{PoolPages: 16})
	defer s2.Close()
	sp2 := s2.Space(1)
	if got := len(sp2.Pages()); got != total {
		t.Fatalf("after reopen: %d pages, want %d", got, total)
	}
	for _, id := range sp2.Pages() {
		f, err := sp2.Pin(id)
		if err != nil {
			t.Fatalf("Pin(%d) after reopen: %v", id, err)
		}
		f.Unpin()
	}
}
