package pager

import (
	"bytes"
	"errors"
	"testing"

	"spatialtf/internal/telemetry"
)

// testOpen opens a store on fs with a small pool and always-sync WAL.
func testOpen(t *testing.T, fs FS, opts Options) *Store {
	t.Helper()
	opts.FS = fs
	if opts.PageSize == 0 {
		opts.PageSize = 512
	}
	s, err := Open("data", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// put allocates one page in sp, fills its payload with pattern b, and
// commits. Returns the page id.
func put(t *testing.T, sp Space, b byte) uint32 {
	t.Helper()
	tx := sp.Begin()
	f, err := sp.Allocate(tx, KindSlotted)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	d := f.Data()
	for i := range d {
		d[i] = b
	}
	sp.Record(tx, f, Patch{Off: 0, Data: d})
	id := f.ID()
	f.Unpin()
	if err := sp.Commit(tx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return id
}

func checkPage(t *testing.T, sp Space, id uint32, b byte) {
	t.Helper()
	f, err := sp.Pin(id)
	if err != nil {
		t.Fatalf("Pin(%d): %v", id, err)
	}
	defer f.Unpin()
	for i, got := range f.Data() {
		if got != b {
			t.Fatalf("page %d byte %d = %#x, want %#x", id, i, got, b)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	sp := s.Space(1)
	ids := []uint32{put(t, sp, 0x11), put(t, sp, 0x22), put(t, sp, 0x33)}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := testOpen(t, fs, Options{})
	defer s2.Close()
	sp2 := s2.Space(1)
	pages := sp2.Pages()
	if len(pages) != 3 {
		t.Fatalf("Pages() = %v, want 3 pages", pages)
	}
	for i, id := range ids {
		checkPage(t, sp2, id, byte(0x11*(i+1)))
	}
}

func TestStoreSpacesAreSegregated(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	defer s.Close()
	a, b := s.Space(1), s.Space(2)
	idA := put(t, a, 0xAA)
	idB := put(t, b, 0xBB)
	if len(a.Pages()) != 1 || len(b.Pages()) != 1 {
		t.Fatalf("space pages = %v / %v, want 1 each", a.Pages(), b.Pages())
	}
	if _, err := a.Pin(idB); !errors.Is(err, ErrBadPage) {
		t.Fatalf("cross-space pin: err = %v, want ErrBadPage", err)
	}
	checkPage(t, a, idA, 0xAA)
	checkPage(t, b, idB, 0xBB)
}

func TestPoolEvictionAndWriteback(t *testing.T) {
	fs := NewMemFS()
	reg := telemetry.New()
	s := testOpen(t, fs, Options{PoolPages: 16, Telemetry: reg})
	defer s.Close()
	sp := s.Space(1)
	// Far more pages than pool frames: eviction with writeback must
	// kick in, and every page must read back intact afterwards.
	const n = 100
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = put(t, sp, byte(i))
	}
	for i, id := range ids {
		checkPage(t, sp, id, byte(i))
		// Immediate re-pin: served from the pool.
		checkPage(t, sp, id, byte(i))
	}
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, p := range snap {
		vals[p.Name] = p.Value
	}
	if vals["pool_evictions_total"] == 0 {
		t.Fatalf("no evictions recorded with pool 16 and %d pages: %v", n, vals)
	}
	if vals["pool_misses_total"] == 0 || vals["pool_hits_total"] == 0 {
		t.Fatalf("hit/miss counters not fed: %v", vals)
	}
}

func TestPoolExhaustedWhenAllPinned(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{PoolPages: 16})
	defer s.Close()
	sp := s.Space(1)
	ids := make([]uint32, 20)
	for i := range ids {
		ids[i] = put(t, sp, byte(i))
	}
	var pinned []*Frame
	defer func() {
		for _, f := range pinned {
			f.Unpin()
		}
	}()
	exhausted := false
	for _, id := range ids {
		f, err := sp.Pin(id)
		if err != nil {
			if !errors.Is(err, ErrPoolExhausted) {
				t.Fatalf("Pin: %v, want ErrPoolExhausted", err)
			}
			exhausted = true
			break
		}
		pinned = append(pinned, f)
	}
	if !exhausted {
		t.Fatalf("pinned %d pages into a 16-frame pool without exhaustion", len(pinned))
	}
}

func TestUncommittedNeverSurvives(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	sp := s.Space(1)
	committed := put(t, sp, 0x5A)

	// A mutation that never commits: recovery must not surface it.
	tx := sp.Begin()
	f, err := sp.Pin(committed)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	f.Data()[0] = 0xFF
	sp.Record(tx, f, Patch{Off: 0, Data: f.Data()[:1]})
	f.Unpin()
	// Crash without commit: clone the filesystem as-is.
	clone := fs.CrashClone(fs.CrashPoints(), false, false)

	s2 := testOpen(t, clone, Options{})
	defer s2.Close()
	checkPage(t, s2.Space(1), committed, 0x5A)
}

func TestRollbackDiscardsAllocation(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	defer s.Close()
	sp := s.Space(1)
	tx := sp.Begin()
	f, err := sp.Allocate(tx, KindSlotted)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id := f.ID()
	f.Unpin()
	sp.Rollback(tx)
	if pages := sp.Pages(); len(pages) != 0 {
		t.Fatalf("space still lists pages after rollback: %v", pages)
	}
	if _, err := sp.Pin(id); err == nil {
		t.Fatalf("pin of rolled-back page %d succeeded", id)
	}
}

func TestCheckpointRotatesWAL(t *testing.T) {
	fs := NewMemFS()
	s := testOpen(t, fs, Options{})
	sp := s.Space(1)
	for i := 0; i < 8; i++ {
		put(t, sp, byte(i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.mu.Lock()
	walSize := s.walSize
	s.mu.Unlock()
	if walSize != walHdrSize {
		t.Fatalf("WAL is %d bytes after checkpoint, want a bare header (%d)", walSize, walHdrSize)
	}
	// Everything must still be there after a post-checkpoint reopen
	// with the rotated (empty) log.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := testOpen(t, fs, Options{})
	defer s2.Close()
	for i := 0; i < 8; i++ {
		checkPage(t, s2.Space(1), uint32(i+1), byte(i))
	}
}

func TestAtomicWriteFile(t *testing.T) {
	fs := NewMemFS()
	if err := AtomicWriteFile(fs, "dir/file.bin", []byte("first")); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	if err := AtomicWriteFile(fs, "dir/file.bin", []byte("second")); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	// At every crash point the file reads back as a complete old or new
	// version — never truncated, never mixed.
	for k := 0; k <= fs.CrashPoints(); k++ {
		for _, torn := range []bool{false, true} {
			clone := fs.CrashClone(k, torn, true)
			ok, err := clone.Exists("dir/file.bin")
			if err != nil || !ok {
				continue // before the first rename: no file is fine
			}
			f, err := clone.Open("dir/file.bin")
			if err != nil {
				t.Fatalf("k=%d open: %v", k, err)
			}
			size, _ := f.Size()
			got := make([]byte, size)
			if size > 0 {
				f.ReadAt(got, 0)
			}
			if !bytes.Equal(got, []byte("first")) && !bytes.Equal(got, []byte("second")) {
				t.Fatalf("k=%d torn=%v: file content %q is neither version", k, torn, got)
			}
		}
	}
}
