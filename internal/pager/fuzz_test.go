package pager

import (
	"bytes"
	"testing"
)

// FuzzWALDecode hammers the WAL record decoder with forged input. The
// hardening contract matches wire.FuzzWireDecode: no panic, no
// over-allocation from attacker-controlled counts (every length is
// bounded against the bytes actually present before it sizes a slice),
// and anything the decoder accepts must re-encode to a decodable
// record.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed records of every type.
	seeds := []walRecord{
		{typ: recAlloc, lsn: 1, tx: 1, space: 1, page: 1, kind: KindSlotted},
		{typ: recPatch, lsn: 2, tx: 1, page: 1, patches: []Patch{{Off: 4, Data: []byte{1, 2, 3, 4}}}},
		{typ: recImage, lsn: 3, tx: 2, space: 1, page: 2, kind: KindOverflow, image: bytes.Repeat([]byte{7}, 128)},
		{typ: recCommit, lsn: 4, tx: 1},
	}
	var all []byte
	for i := range seeds {
		one := appendWALRecord(nil, &seeds[i])
		f.Add(one)
		all = append(all, one...)
	}
	f.Add(all)
	f.Add(encodeWALHeader(512, 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			rec, n, err := decodeWALRecord(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(rest))
			}
			// Accepted records must carry only bytes that were present:
			// the decoder must never hand back more data than the frame
			// held (over-allocation guard).
			total := len(rec.image)
			for _, p := range rec.patches {
				total += len(p.Data)
			}
			if total > n {
				t.Fatalf("decoded %d payload bytes from a %d-byte frame", total, n)
			}
			// Round-trip: re-encoding an accepted record yields a frame
			// the decoder accepts again.
			re := appendWALRecord(nil, &rec)
			if _, _, err := decodeWALRecord(re); err != nil {
				t.Fatalf("re-encoded record rejected: %v", err)
			}
			rest = rest[n:]
		}
		// Headers too: arbitrary bytes must never panic the header
		// decoder.
		_, _, _ = decodeWALHeader(data)
	})
}
