// Package pager is the durable storage substrate under internal/storage:
// a fixed-size-page file, a buffer pool with pin/unpin latches and clock
// eviction, and a redo-only write-ahead log with incremental
// checkpointing and crash recovery.
//
// Two implementations of the Space interface exist:
//
//   - Mem is a pure in-memory pager with no I/O, no WAL and no pool.
//     It backs the embedded/default path (storage.NewHeap), keeping the
//     hot path allocation- and syscall-free.
//   - Store is the durable pager: pages live in a single page file
//     (pages.db), mutations are logged to wal.log before the dirty page
//     can reach the file, and Open replays the committed WAL suffix.
//
// A Space is one table's view of the pager: a set of pages addressed by
// uint32 ids starting at 1 (page 0 is reserved, matching the storage
// layer's InvalidRowID convention). Callers Pin a page to read or write
// its payload and must Unpin it on every path — the spatiallint
// latchpair rule enforces this discipline module-wide.
//
// Mutation protocol (write-ahead logging):
//
//	tx := sp.Begin()
//	f, _ := sp.Allocate(tx, pager.KindSlotted)  // or sp.Pin(page)
//	... mutate f.Data() in place ...
//	sp.Record(tx, f, patches...)                // redo for the edit
//	f.Unpin()
//	err := sp.Commit(tx)                        // durable on return*
//
// (*) subject to the store's SyncMode; see Options.
package pager

import "errors"

// DefaultPageSize is the page size a Store is created with when Options
// leaves it zero. It matches storage.DefaultPageSize.
const DefaultPageSize = 8192

// Page kinds. The pager itself only distinguishes free from allocated;
// kinds exist so the storage layer (and recovery scans) can tell slotted
// pages from jumbo-row chain pages without decoding payloads.
const (
	// KindFree marks a page that has never been allocated.
	KindFree uint16 = 0
	// KindSlotted is a regular slotted heap page.
	KindSlotted uint16 = 1
	// KindJumboHead is the first page of a jumbo-row chain:
	// payload = [total length u32][next page u32][first chunk].
	KindJumboHead uint16 = 2
	// KindOverflow is a continuation page of a jumbo-row chain:
	// payload = [next page u32][chunk].
	KindOverflow uint16 = 3
)

// Errors returned by pager operations.
var (
	// ErrBadPage reports a pin of a page id outside the space.
	ErrBadPage = errors.New("pager: no such page in space")
	// ErrPoolExhausted reports that every buffer-pool frame is pinned
	// or holds uncommitted data, so no frame can be evicted.
	ErrPoolExhausted = errors.New("pager: buffer pool exhausted (all frames pinned or uncommitted)")
	// ErrCorrupt reports an unrecoverable on-disk inconsistency.
	ErrCorrupt = errors.New("pager: data corrupt")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("pager: store closed")
)

// Tx identifies one atomic mutation batch. WAL records carry the tx id
// of the mutation they log; recovery replays only records whose tx has a
// commit record in the valid WAL prefix. Tx 0 is the no-op transaction
// Mem spaces hand out.
type Tx uint64

// Patch is one contiguous byte range of a page payload, used as a
// slot-level redo record: the caller applies the edit to the pinned
// frame first, then Records the patched ranges.
type Patch struct {
	// Off is the byte offset into the page payload.
	Off int
	// Data is the post-edit bytes at Off. Record copies them into the
	// WAL buffer immediately, so Data may alias the frame payload.
	Data []byte
}

// Space is one table's view of a pager: a growable set of pages. All
// methods are invoked under the owning Heap's lock for Mem spaces; Store
// spaces additionally serialise internally, so two heaps on one Store
// are safe.
type Space interface {
	// PayloadSize returns the usable bytes per page (page size minus
	// the pager's per-page frame header, if any).
	PayloadSize() int
	// Pages returns the ids of allocated pages in ascending order.
	Pages() []uint32
	// Pin latches the page into memory and returns its frame. The
	// caller must Unpin the frame on every path.
	Pin(page uint32) (*Frame, error)
	// Begin opens a mutation batch.
	Begin() Tx
	// Allocate appends a fresh zeroed page of the given kind to the
	// space and returns it pinned.
	Allocate(tx Tx, kind uint16) (*Frame, error)
	// Record logs redo for payload ranges the caller already edited in
	// place on the pinned frame.
	Record(tx Tx, f *Frame, patches ...Patch)
	// RecordImage logs the frame's entire payload as redo; used after
	// wholesale rewrites such as in-place page compaction.
	RecordImage(tx Tx, f *Frame)
	// Commit makes the batch durable (subject to the store's sync
	// mode). On error the batch must be treated as not applied.
	Commit(tx Tx) error
	// Rollback abandons the batch's commit; bookkeeping only (the
	// pager is redo-only — callers must not have published the edits).
	Rollback(tx Tx)
}

// Frame is a pinned page. Data returns the payload slice; mutations are
// only legal on frames pinned from a Begin/Commit batch and must be
// followed by Record/RecordImage before Commit.
type Frame struct {
	id    uint32
	space uint32
	kind  uint16
	data  []byte
	// raw is the full on-disk page (frame header + payload) for Store
	// frames; data aliases raw[frameHdrSize:]. Nil for Mem frames.
	raw []byte

	// Pool state; zero/nil for Mem frames.
	store  *Store
	lsn    uint64 // LSN of the newest record applied to this page
	tx     Tx     // tx of the newest record (eviction barrier)
	pins   int
	ref    bool // clock reference bit
	dirty  bool
	imaged bool // a full image/alloc for this page is in the current WAL
	slot   int  // index in the pool slot table
}

// ID returns the page id within its space.
func (f *Frame) ID() uint32 { return f.id }

// Kind returns the page kind recorded at allocation.
func (f *Frame) Kind() uint16 { return f.kind }

// Data returns the page payload. The slice is valid until Unpin.
func (f *Frame) Data() []byte { return f.data }

// Unpin releases the latch taken by Pin or Allocate.
func (f *Frame) Unpin() {
	if f.store != nil {
		f.store.unpin(f)
	}
}
