package rtree

import (
	"container/heap"

	"spatialtf/internal/geom"
)

// Incremental nearest-neighbour traversal (Hjaltason & Samet, "Ranking
// in spatial databases", cited as [9] by the paper): a best-first walk
// over the tree using a priority queue ordered by MBR distance to the
// query. Items surface in non-decreasing order of their MBR distance —
// a lower bound on the exact geometry distance, which the operator
// layer (extidx.Nearest) refines with exact distances.

// nnEntry is one priority-queue element: either a node to expand or a
// data item to emit.
type nnEntry struct {
	dist float64
	node *node
	item Item
}

type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NearestFunc calls fn for each indexed item in non-decreasing order of
// MBR distance to q, together with that distance (a lower bound on the
// exact distance). Iteration stops when fn returns false. The traversal
// is incremental: it expands only the nodes needed to surface the items
// actually consumed.
func (t *Tree) NearestFunc(q geom.MBR, fn func(it Item, lowerBound float64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.size == 0 {
		return
	}
	pq := &nnQueue{{dist: t.root.mbr().Dist(q), node: t.root}}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nnEntry)
		if e.node == nil {
			if !fn(e.item, e.dist) {
				return
			}
			continue
		}
		n := e.node
		for i := 0; i < n.count(); i++ {
			m := n.rect(i)
			d := m.Dist(q)
			if n.leaf {
				heap.Push(pq, nnEntry{dist: d, item: Item{MBR: m, Interior: n.interiors[i], ID: n.ids[i]}})
			} else {
				heap.Push(pq, nnEntry{dist: d, node: n.children[i]})
			}
		}
	}
}

// NearestK returns up to k items by MBR distance from q, in order. It
// is the pure primary-filter form; use extidx.Nearest for exact-geometry
// ranking.
func (t *Tree) NearestK(q geom.MBR, k int) []Item {
	if k <= 0 {
		return nil
	}
	out := make([]Item, 0, k)
	t.NearestFunc(q, func(it Item, _ float64) bool {
		out = append(out, it)
		return len(out) < k
	})
	return out
}
