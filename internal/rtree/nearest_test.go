package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialtf/internal/geom"
)

func TestNearestFuncOrderedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	items := randomItems(rng, 2000, 1000)
	tr := BulkLoad(append([]Item(nil), items...), 16)
	q := geom.MBR{MinX: 500, MinY: 500, MaxX: 500, MaxY: 500}
	prev := -1.0
	n := 0
	tr.NearestFunc(q, func(it Item, lower float64) bool {
		if lower < prev {
			t.Fatalf("distances out of order: %g after %g", lower, prev)
		}
		if got := it.MBR.Dist(q); got != lower {
			t.Fatalf("reported lower bound %g != item MBR distance %g", lower, got)
		}
		prev = lower
		n++
		return true
	})
	if n != len(items) {
		t.Fatalf("surfaced %d of %d items", n, len(items))
	}
}

func TestNearestKAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	items := randomItems(rng, 1500, 1000)
	tr := BulkLoad(append([]Item(nil), items...), 16)
	for trial := 0; trial < 20; trial++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		q := geom.MBR{MinX: x, MinY: y, MaxX: x, MaxY: y}
		k := 1 + rng.Intn(20)
		got := tr.NearestK(q, k)
		if len(got) != k {
			t.Fatalf("trial %d: NearestK returned %d", trial, len(got))
		}
		// Brute-force k-th smallest MBR distance.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.MBR.Dist(q)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := it.MBR.Dist(q)
			// Each returned distance must equal the i-th smallest
			// (allowing ties to swap items, distances must match).
			if d != dists[i] {
				t.Fatalf("trial %d: result %d at distance %g, want %g", trial, i, d, dists[i])
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := New(8)
	if got := tr.NearestK(geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 5); len(got) != 0 {
		t.Errorf("empty tree NearestK = %v", got)
	}
	tr.Insert(Item{MBR: geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, ID: rid(0)})
	if got := tr.NearestK(geom.MBR{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, 0); got != nil {
		t.Errorf("k=0 NearestK = %v", got)
	}
	got := tr.NearestK(geom.MBR{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, 10)
	if len(got) != 1 {
		t.Errorf("k>size NearestK = %d items", len(got))
	}
	// Early stop.
	rng := rand.New(rand.NewSource(419))
	for _, it := range randomItems(rng, 100, 50) {
		tr.Insert(it)
	}
	n := 0
	tr.NearestFunc(geom.MBR{MinX: 25, MinY: 25, MaxX: 25, MaxY: 25}, func(Item, float64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}
