package rtree

import (
	"fmt"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// NodeRef is a read-only handle on an R-tree node, the unit the
// paper's parallel join distributes: the subtree_root table function of
// §4.1 returns one row per subtree root, and each parallel instance of
// spatial_join joins a pair of NodeRefs.
//
// NodeRefs must only be used while the tree is not being modified.
type NodeRef struct {
	n *node
	// Level of the node, counting leaves as 1.
	level int
}

// IsZero reports whether the handle is empty.
func (r NodeRef) IsZero() bool { return r.n == nil }

// Level returns the node's level (leaves are 1).
func (r NodeRef) Level() int { return r.level }

// IsLeaf reports whether the node is a leaf.
func (r NodeRef) IsLeaf() bool { return r.n.leaf }

// MBR returns the node's bounding rectangle.
func (r NodeRef) MBR() geom.MBR { return r.n.mbr() }

// NumEntries returns the number of slots in the node.
func (r NodeRef) NumEntries() int { return r.n.count() }

// EntryMBR returns the bounding rectangle of slot i.
func (r NodeRef) EntryMBR(i int) geom.MBR { return r.n.rect(i) }

// EntryRects exposes the node's structure-of-arrays rectangle layout:
// slot i's MBR is (xlo[i], ylo[i], xhi[i], yhi[i]). The slices are the
// node's live storage — callers must treat them as read-only and only
// hold them while the tree is pinned or otherwise unmodified. The
// spatial join's plane-sweep primary filter scans these flat arrays
// directly.
func (r NodeRef) EntryRects() (xlo, ylo, xhi, yhi []float64) {
	return r.n.xlo, r.n.ylo, r.n.xhi, r.n.yhi
}

// EntryID returns the rowid in slot i; only meaningful on leaves.
func (r NodeRef) EntryID(i int) storage.RowID { return r.n.ids[i] }

// EntryInterior returns the interior approximation of slot i (only
// meaningful on leaves; zero-area when the index was built without
// interior approximations).
func (r NodeRef) EntryInterior(i int) geom.MBR { return r.n.interiors[i] }

// Child returns the handle of the i-th child; only meaningful on
// internal nodes.
func (r NodeRef) Child(i int) NodeRef {
	return NodeRef{n: r.n.children[i], level: r.level - 1}
}

// Items appends every data item under the node to dst and returns it.
func (r NodeRef) Items(dst []Item) []Item {
	if r.n.leaf {
		for i := 0; i < r.n.count(); i++ {
			dst = append(dst, Item{MBR: r.n.rect(i), Interior: r.n.interiors[i], ID: r.n.ids[i]})
		}
		return dst
	}
	for i := range r.n.children {
		dst = r.Child(i).Items(dst)
	}
	return dst
}

// String renders the handle for logs (Figure 1 of the paper labels
// subtree roots R11, R12, ...; callers attach their own labels).
func (r NodeRef) String() string {
	if r.n == nil {
		return "NodeRef(nil)"
	}
	kind := "internal"
	if r.n.leaf {
		kind = "leaf"
	}
	return fmt.Sprintf("NodeRef(%s level=%d entries=%d %v)", kind, r.level, r.n.count(), r.n.mbr())
}

// Root returns the handle of the root node.
func (t *Tree) Root() NodeRef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return NodeRef{n: t.root, level: t.height}
}

// SubtreeRoots implements the subtree_root table function of §4.1: it
// descends `descend` levels below the root and returns the roots of the
// subtrees at that level, in left-to-right order. Descending by one
// level in Figure 1's two-level trees yields {R11, R12} and {S11, S12};
// the join then runs over the 4 subtree pairs.
//
// If the tree is too shallow to descend that far, the deepest complete
// level above the leaves is used (descending is capped at height-1 so a
// subtree is never a bare data entry). An empty tree yields no roots.
func (t *Tree) SubtreeRoots(descend int) []NodeRef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.size == 0 {
		return nil
	}
	if descend < 0 {
		descend = 0
	}
	if max := t.height - 1; descend > max {
		descend = max
	}
	level := []NodeRef{{n: t.root, level: t.height}}
	for d := 0; d < descend; d++ {
		next := make([]NodeRef, 0, len(level)*t.maxEntries)
		for _, r := range level {
			for i := range r.n.children {
				next = append(next, r.Child(i))
			}
		}
		level = next
	}
	return level
}

// SubtreeRootsAtLeast returns the shallowest SubtreeRoots expansion with
// at least want roots (or the deepest possible if the tree cannot supply
// that many). The parallel join uses it to pick a decomposition level
// matching the worker count: "we descend both trees as far below as to
// get appropriate number of subtree-joins".
func (t *Tree) SubtreeRootsAtLeast(want int) []NodeRef {
	if want < 1 {
		want = 1
	}
	for d := 0; ; d++ {
		roots := t.SubtreeRoots(d)
		if len(roots) >= want {
			return roots
		}
		// Cannot descend further?
		if d >= t.Height()-1 {
			return roots
		}
	}
}
