// Package rtree implements the R-tree spatial index of Oracle Spatial as
// described in the paper: a Guttman-style dynamic R-tree with quadratic
// node splits, an STR packed bulk loader, a parallel subtree build used
// by the paper's §5 parallel index creation, and subtree-root
// enumeration at a chosen level used by the §4.1 parallel spatial join.
//
// The tree indexes geometry MBRs keyed by rowid; the exact geometries
// stay in the base table and are fetched by the join's secondary filter.
//
// Node entry rectangles are stored in a structure-of-arrays layout
// (contiguous xlo/ylo/xhi/yhi float64 slices per node) so the hot scans
// — window queries, nearest-neighbour expansion, and the spatial join's
// plane-sweep primary filter — walk flat cache-resident arrays instead
// of chasing per-entry structs (cf. SIMD-ified R-tree query processing).
package rtree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// DefaultMaxEntries is the default node fanout. The metadata row of an
// Oracle Spatial R-tree records the same parameter.
const DefaultMaxEntries = 32

// ErrNotFound is returned by Delete when (id, mbr) is not in the tree.
var ErrNotFound = errors.New("rtree: entry not found")

// Item is one indexed datum: the MBR approximation of a geometry and the
// rowid of the base-table row holding the exact geometry. Interior
// optionally carries an interior approximation (a rectangle guaranteed
// to lie inside the geometry, per Kothuri & Ravada's SSTD 2001 paper);
// joins use it to accept candidates without fetching exact geometries.
// A zero or zero-area Interior means "no interior approximation".
type Item struct {
	MBR      geom.MBR
	Interior geom.MBR
	ID       storage.RowID
}

// entry is a detached node slot used by the cold restructuring paths
// (split, condense, reinsertion): child is set for internal slots, item
// fields for leaf slots. The resident layout inside a node is SoA; an
// entry is only materialised while entries move between nodes.
type entry struct {
	mbr geom.MBR
	// interior is only meaningful on leaf entries.
	interior geom.MBR
	child    *node
	id       storage.RowID
}

// node stores its entry rectangles as four parallel coordinate slices
// (structure of arrays); slot i's rectangle is
// (xlo[i], ylo[i], xhi[i], yhi[i]). children is parallel on internal
// nodes; ids and interiors are parallel on leaves.
type node struct {
	leaf               bool
	xlo, ylo, xhi, yhi []float64
	children           []*node
	ids                []storage.RowID
	interiors          []geom.MBR
}

// newNode returns an empty node with capacity for capHint entries.
func newNode(leaf bool, capHint int) *node {
	n := &node{leaf: leaf}
	if capHint > 0 {
		coords := make([]float64, 0, 4*capHint)
		n.xlo = coords[0:0:capHint]
		n.ylo = coords[capHint : capHint : 2*capHint]
		n.xhi = coords[2*capHint : 2*capHint : 3*capHint]
		n.yhi = coords[3*capHint : 3*capHint : 4*capHint]
		if leaf {
			n.ids = make([]storage.RowID, 0, capHint)
			n.interiors = make([]geom.MBR, 0, capHint)
		} else {
			n.children = make([]*node, 0, capHint)
		}
	}
	return n
}

// count returns the number of occupied slots.
func (n *node) count() int { return len(n.xlo) }

// rect returns slot i's rectangle.
func (n *node) rect(i int) geom.MBR {
	return geom.MBR{MinX: n.xlo[i], MinY: n.ylo[i], MaxX: n.xhi[i], MaxY: n.yhi[i]}
}

// setRect overwrites slot i's rectangle.
func (n *node) setRect(i int, m geom.MBR) {
	n.xlo[i], n.ylo[i], n.xhi[i], n.yhi[i] = m.MinX, m.MinY, m.MaxX, m.MaxY
}

// pushRect appends a rectangle, growing all four coordinate slices.
func (n *node) pushRect(m geom.MBR) {
	n.xlo = append(n.xlo, m.MinX)
	n.ylo = append(n.ylo, m.MinY)
	n.xhi = append(n.xhi, m.MaxX)
	n.yhi = append(n.yhi, m.MaxY)
}

// pushLeaf appends a data slot to a leaf.
func (n *node) pushLeaf(m, interior geom.MBR, id storage.RowID) {
	n.pushRect(m)
	n.ids = append(n.ids, id)
	n.interiors = append(n.interiors, interior)
}

// pushChild appends a child slot to an internal node.
func (n *node) pushChild(m geom.MBR, c *node) {
	n.pushRect(m)
	n.children = append(n.children, c)
}

// pushEntry appends a detached entry, dispatching on the node kind.
func (n *node) pushEntry(e entry) {
	if n.leaf {
		n.pushLeaf(e.mbr, e.interior, e.id)
	} else {
		n.pushChild(e.mbr, e.child)
	}
}

// entryAt detaches slot i into an entry value.
func (n *node) entryAt(i int) entry {
	e := entry{mbr: n.rect(i)}
	if n.leaf {
		e.interior = n.interiors[i]
		e.id = n.ids[i]
	} else {
		e.child = n.children[i]
	}
	return e
}

// appendEntries detaches every slot into dst and returns it.
func (n *node) appendEntries(dst []entry) []entry {
	for i := 0; i < n.count(); i++ {
		dst = append(dst, n.entryAt(i))
	}
	return dst
}

// removeAt deletes slot i, preserving slot order.
func (n *node) removeAt(i int) {
	n.xlo = append(n.xlo[:i], n.xlo[i+1:]...)
	n.ylo = append(n.ylo[:i], n.ylo[i+1:]...)
	n.xhi = append(n.xhi[:i], n.xhi[i+1:]...)
	n.yhi = append(n.yhi[:i], n.yhi[i+1:]...)
	if n.leaf {
		n.ids = append(n.ids[:i], n.ids[i+1:]...)
		n.interiors = append(n.interiors[:i], n.interiors[i+1:]...)
	} else {
		n.children = append(n.children[:i], n.children[i+1:]...)
	}
}

// reset empties the node, keeping its backing arrays.
func (n *node) reset() {
	n.xlo, n.ylo, n.xhi, n.yhi = n.xlo[:0], n.ylo[:0], n.xhi[:0], n.yhi[:0]
	if n.leaf {
		n.ids = n.ids[:0]
		n.interiors = n.interiors[:0]
	} else {
		// Drop child pointers so condensed subtrees can be collected.
		for i := range n.children {
			n.children[i] = nil
		}
		n.children = n.children[:0]
	}
}

// truncate keeps the first k slots of an internal node, dropping the
// rest (condense compacts in place and then truncates).
func (n *node) truncate(k int) {
	n.xlo, n.ylo, n.xhi, n.yhi = n.xlo[:k], n.ylo[:k], n.xhi[:k], n.yhi[:k]
	for i := k; i < len(n.children); i++ {
		n.children[i] = nil
	}
	n.children = n.children[:k]
}

func (n *node) mbr() geom.MBR {
	if n.count() == 0 {
		return geom.EmptyMBR()
	}
	m := n.rect(0)
	for i := 1; i < n.count(); i++ {
		if n.xlo[i] < m.MinX {
			m.MinX = n.xlo[i]
		}
		if n.ylo[i] < m.MinY {
			m.MinY = n.ylo[i]
		}
		if n.xhi[i] > m.MaxX {
			m.MaxX = n.xhi[i]
		}
		if n.yhi[i] > m.MaxY {
			m.MaxY = n.yhi[i]
		}
	}
	return m
}

// Tree is an R-tree. Readers (queries, joins, subtree enumeration) may
// run concurrently; writers are exclusive. NodeRef handles obtained from
// Root or SubtreeRoots are only valid while the tree is not being
// modified; long-lived traversals (streaming join cursors) must hold a
// Pin for their lifetime, which blocks writers without excluding other
// readers.
type Tree struct {
	mu         sync.RWMutex
	root       *node
	height     int // leaves are level 1
	size       int
	maxEntries int
	minEntries int

	// pinMu gates structural writes against long-lived NodeRef readers.
	// It is deliberately separate from mu: pinned code paths call the
	// RLock-taking accessors (Root, SubtreeRoots, Len, ...) and nesting
	// RLock acquisitions on one RWMutex can deadlock when a writer is
	// queued between them.
	pinMu sync.RWMutex
	// seq is a process-unique creation number; callers pinning several
	// trees acquire pins in seq order to avoid lock-order inversions.
	seq uint64
}

// treeSeq numbers trees as they are constructed.
var treeSeq atomic.Uint64

// New returns an empty tree with the given maximum node fanout
// (0 selects DefaultMaxEntries). Minimum occupancy is 40 % of maximum,
// the usual Guttman recommendation.
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	minEntries := maxEntries * 2 / 5
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       newNode(true, 0),
		height:     1,
		maxEntries: maxEntries,
		minEntries: minEntries,
		seq:        treeSeq.Add(1),
	}
}

// Seq returns the tree's process-unique creation number, the canonical
// pin-acquisition order for multi-tree operations.
func (t *Tree) Seq() uint64 { return t.seq }

// Pin accounting, package-wide: how many pins were ever taken and how
// many are held right now. A pin is per-cursor (not per-row), so two
// atomic adds are noise next to the traversal it protects. Exposed as
// scrape-time views by DB.EnableTelemetry.
var (
	pinsTotal atomic.Int64
	pinsHeld  atomic.Int64
)

// PinStats reports the package-wide pin counters: pins ever taken and
// pins currently held.
func PinStats() (total, held int64) {
	return pinsTotal.Load(), pinsHeld.Load()
}

// Pin blocks structural modification of the tree until Unpin, without
// excluding other readers. Cursors that traverse NodeRefs across many
// fetch calls (the pipelined spatial join) pin the operand trees for the
// cursor's lifetime so concurrent DML waits instead of racing the
// traversal.
func (t *Tree) Pin() {
	t.pinMu.RLock()
	pinsTotal.Add(1)
	pinsHeld.Add(1)
}

// Unpin releases a Pin.
func (t *Tree) Unpin() {
	pinsHeld.Add(-1)
	t.pinMu.RUnlock()
}

// Len returns the number of indexed items.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the tree height (1 for a leaf-only tree).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// MaxEntries returns the node fanout parameter.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// Bounds returns the MBR of everything in the tree.
func (t *Tree) Bounds() geom.MBR {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root.mbr()
}

// Insert adds item to the tree.
func (t *Tree) Insert(item Item) error {
	if !item.MBR.Valid() {
		return fmt.Errorf("rtree: insert %v: invalid MBR %v", item.ID, item.MBR)
	}
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insertAtLevel(entry{mbr: item.MBR, interior: item.Interior, id: item.ID}, 1)
	t.size++
	return nil
}

// insertAtLevel places e at the given level (1 = leaf), splitting and
// growing the root as needed.
func (t *Tree) insertAtLevel(e entry, level int) {
	split := t.insertInto(t.root, e, level, t.height)
	if split != nil {
		old := t.root
		t.root = newNode(false, 2)
		t.root.pushChild(old.mbr(), old)
		t.root.pushChild(split.mbr(), split)
		t.height++
	}
}

// insertInto descends from n (at nodeLevel) to the target level, inserts
// e, and returns a new sibling if n split.
func (t *Tree) insertInto(n *node, e entry, level, nodeLevel int) *node {
	if nodeLevel == level {
		n.pushEntry(e)
		if n.count() > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	i := chooseSubtree(n, e.mbr)
	child := n.children[i]
	split := t.insertInto(child, e, level, nodeLevel-1)
	n.setRect(i, child.mbr())
	if split != nil {
		n.pushChild(split.mbr(), split)
		if n.count() > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs least enlargement to
// absorb m, breaking ties by smaller area (Guttman's ChooseLeaf).
//
//spatiallint:ignore floateq heuristic tie-break on computed areas; a missed exact tie only changes which child absorbs the entry
func chooseSubtree(n *node, m geom.MBR) int {
	best := 0
	bestEnl := n.rect(0).Enlargement(m)
	bestArea := n.rect(0).Area()
	for i := 1; i < n.count(); i++ {
		r := n.rect(i)
		enl := r.Enlargement(m)
		area := r.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split in place, leaving half
// the entries in n and returning a new sibling with the rest.
func (t *Tree) splitNode(n *node) *node {
	entries := n.appendEntries(make([]entry, 0, n.count()))
	// Pick seeds: the pair wasting the most area if grouped together.
	s1, s2 := pickSeeds(entries)
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	m1 := entries[s1].mbr
	m2 := entries[s2].mbr
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment if one group must take all remaining to meet
		// the minimum.
		if len(g1)+len(rest) == t.minEntries {
			for _, e := range rest {
				g1 = append(g1, e)
				m1 = m1.Union(e.mbr)
			}
			break
		}
		if len(g2)+len(rest) == t.minEntries {
			for _, e := range rest {
				g2 = append(g2, e)
				m2 = m2.Union(e.mbr)
			}
			break
		}
		// PickNext: the entry with the greatest preference difference.
		bestIdx, bestDiff := -1, -1.0
		var bestD1, bestD2 float64
		for i, e := range rest {
			d1 := m1.Enlargement(e.mbr)
			d2 := m2.Enlargement(e.mbr)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
				bestD1, bestD2 = d1, d2
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		// Assign to the group needing less enlargement; ties by area,
		// then by count.
		toG1 := false
		switch {
		case bestD1 < bestD2:
			toG1 = true
		case bestD2 < bestD1:
			toG1 = false
		case m1.Area() < m2.Area():
			toG1 = true
		case m2.Area() < m1.Area():
			toG1 = false
		default:
			toG1 = len(g1) <= len(g2)
		}
		if toG1 {
			g1 = append(g1, e)
			m1 = m1.Union(e.mbr)
		} else {
			g2 = append(g2, e)
			m2 = m2.Union(e.mbr)
		}
	}
	n.reset()
	for _, e := range g1 {
		n.pushEntry(e)
	}
	sib := newNode(n.leaf, len(g2))
	for _, e := range g2 {
		sib.pushEntry(e)
	}
	return sib
}

// pickSeeds returns the indexes of the two entries whose combined MBR
// wastes the most area.
func pickSeeds(entries []entry) (int, int) {
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].mbr.Union(entries[j].mbr).Area() -
				entries[i].mbr.Area() - entries[j].mbr.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

// Delete removes the item with the given id whose stored MBR intersects
// item.MBR. It implements Guttman's CondenseTree: underflowing nodes are
// dissolved and their data entries reinserted.
func (t *Tree) Delete(item Item) error {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, idx := t.findLeaf(t.root, item)
	if leaf == nil {
		return fmt.Errorf("%w: %v", ErrNotFound, item.ID)
	}
	leaf.removeAt(idx)
	t.size--
	var orphans []entry
	t.condense(t.root, t.height, &orphans)
	// Shrink the root if it has a single child.
	for !t.root.leaf && t.root.count() == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	if !t.root.leaf && t.root.count() == 0 {
		t.root = newNode(true, 0)
		t.height = 1
	}
	for _, e := range orphans {
		t.insertAtLevel(e, 1)
	}
	return nil
}

// findLeaf locates the leaf and slot holding item.
func (t *Tree) findLeaf(n *node, item Item) (*node, int) {
	if n.leaf {
		for i, id := range n.ids {
			if id == item.ID {
				return n, i
			}
		}
		return nil, 0
	}
	for i := 0; i < n.count(); i++ {
		if n.rect(i).Intersects(item.MBR) {
			if leaf, k := t.findLeaf(n.children[i], item); leaf != nil {
				return leaf, k
			}
		}
	}
	return nil, 0
}

// condense removes underflowing descendants of n, collecting their data
// entries into orphans, and tightens MBRs bottom-up.
func (t *Tree) condense(n *node, level int, orphans *[]entry) {
	if n.leaf {
		return
	}
	kept := 0
	for i := 0; i < n.count(); i++ {
		c := n.children[i]
		t.condense(c, level-1, orphans)
		// Non-root nodes must hold at least minEntries; dissolve any
		// child that underflows and reinsert its data entries.
		if c.count() < t.minEntries {
			collectItems(c, orphans)
			continue
		}
		n.children[kept] = c
		n.setRect(kept, c.mbr())
		kept++
	}
	n.truncate(kept)
}

// collectItems gathers all data entries under n.
func collectItems(n *node, out *[]entry) {
	if n.leaf {
		*out = n.appendEntries(*out)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// Search calls fn for every item whose MBR intersects q, stopping early
// if fn returns false.
func (t *Tree) Search(q geom.MBR, fn func(Item) bool) {
	t.SearchCounted(q, fn)
}

// SearchCounted is Search returning the number of index nodes visited —
// the "buffer gets" a disk-resident execution of the probe would issue.
// The nested-loop join baseline reports this to expose its repeated
// index descents.
func (t *Tree) SearchCounted(q geom.MBR, fn func(Item) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	visited := 0
	searchNode(t.root, q, fn, &visited)
	return visited
}

func searchNode(n *node, q geom.MBR, fn func(Item) bool, visited *int) bool {
	*visited++
	xlo, ylo, xhi, yhi := n.xlo, n.ylo, n.xhi, n.yhi
	if n.leaf {
		for i := range xlo {
			if xlo[i] > q.MaxX || q.MinX > xhi[i] || ylo[i] > q.MaxY || q.MinY > yhi[i] {
				continue
			}
			it := Item{
				MBR:      geom.MBR{MinX: xlo[i], MinY: ylo[i], MaxX: xhi[i], MaxY: yhi[i]},
				Interior: n.interiors[i],
				ID:       n.ids[i],
			}
			if !fn(it) {
				return false
			}
		}
		return true
	}
	for i := range xlo {
		if xlo[i] > q.MaxX || q.MinX > xhi[i] || ylo[i] > q.MaxY || q.MinY > yhi[i] {
			continue
		}
		if !searchNode(n.children[i], q, fn, visited) {
			return false
		}
	}
	return true
}

// SearchWithinDist calls fn for every item whose MBR lies within
// distance d of q — the primary filter for within-distance queries.
func (t *Tree) SearchWithinDist(q geom.MBR, d float64, fn func(Item) bool) {
	t.SearchWithinDistCounted(q, d, fn)
}

// SearchWithinDistCounted is SearchWithinDist returning the number of
// index nodes visited.
func (t *Tree) SearchWithinDistCounted(q geom.MBR, d float64, fn func(Item) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	visited := 0
	searchDistNode(t.root, q, d, fn, &visited)
	return visited
}

func searchDistNode(n *node, q geom.MBR, d float64, fn func(Item) bool, visited *int) bool {
	*visited++
	for i := 0; i < n.count(); i++ {
		m := n.rect(i)
		if m.Dist(q) > d {
			continue
		}
		if n.leaf {
			if !fn(Item{MBR: m, Interior: n.interiors[i], ID: n.ids[i]}) {
				return false
			}
		} else if !searchDistNode(n.children[i], q, d, fn, visited) {
			return false
		}
	}
	return true
}

// Items returns every indexed item (in unspecified order).
func (t *Tree) Items() []Item {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Item, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for i := 0; i < n.count(); i++ {
				out = append(out, Item{MBR: n.rect(i), Interior: n.interiors[i], ID: n.ids[i]})
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Stats describes the tree shape for the index metadata report.
type Stats struct {
	Items      int
	Height     int
	Nodes      int
	Leaves     int
	AvgFanout  float64
	MaxEntries int
}

// Stats returns shape statistics.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Items: t.size, Height: t.height, MaxEntries: t.maxEntries}
	total := 0
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		total += n.count()
		if n.leaf {
			s.Leaves++
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	if s.Nodes > 0 {
		s.AvgFanout = float64(total) / float64(s.Nodes)
	}
	return s
}

// Validate checks the structural invariants: every node MBR equals the
// union of its entries, leaves all at the same depth, occupancy bounds
// on non-root nodes, parallel-slice consistency of the SoA layout, and
// the item count. Tests run it after mutation storms and after parallel
// builds.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	count := 0
	if err := t.validateNode(t.root, t.height, true, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d items reachable", t.size, count)
	}
	return nil
}

func (t *Tree) validateNode(n *node, level int, isRoot bool, count *int) error {
	if n.leaf != (level == 1) {
		return fmt.Errorf("rtree: leaf flag %v at level %d", n.leaf, level)
	}
	c := n.count()
	if len(n.ylo) != c || len(n.xhi) != c || len(n.yhi) != c {
		return fmt.Errorf("rtree: ragged coordinate slices at level %d", level)
	}
	if n.leaf {
		if len(n.ids) != c || len(n.interiors) != c || len(n.children) != 0 {
			return fmt.Errorf("rtree: ragged leaf slices at level %d", level)
		}
	} else if len(n.children) != c || len(n.ids) != 0 || len(n.interiors) != 0 {
		return fmt.Errorf("rtree: ragged internal slices at level %d", level)
	}
	if !isRoot && c < t.minEntries {
		return fmt.Errorf("rtree: node at level %d underflows with %d entries", level, c)
	}
	if c > t.maxEntries {
		return fmt.Errorf("rtree: node at level %d overflows with %d entries", level, c)
	}
	if n.leaf {
		*count += c
		return nil
	}
	for i := 0; i < c; i++ {
		got := n.children[i].mbr()
		if got != n.rect(i) {
			return fmt.Errorf("rtree: stale MBR at level %d: stored %v, actual %v", level, n.rect(i), got)
		}
		if err := t.validateNode(n.children[i], level-1, false, count); err != nil {
			return err
		}
	}
	return nil
}
