package rtree

import (
	"slices"
	"sync"
	"time"
)

// ParallelBulkLoad builds an R-tree using the paper's §5 strategy:
// "subtrees are constructed on subsets of data in parallel and merged at
// the end". Items are range-partitioned on X centroid (so subtrees
// cover disjoint vertical strips and the merged tree stays well
// clustered), each partition is STR-packed by its own goroutine, and the
// subtree roots are merged under packed upper levels.
//
// The result is structurally equivalent to a sequential STR build: same
// height discipline (all leaves at one depth) and the same item set;
// tests assert query-result equivalence.
func ParallelBulkLoad(items []Item, maxEntries, workers int) *Tree {
	if workers < 1 {
		workers = 1
	}
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	if workers == 1 || len(items) < workers*t.maxEntries*2 {
		return BulkLoad(items, maxEntries)
	}

	// Phase 1 (parallelised in the paper by a table function): the items
	// — already (mbr, rowid) pairs here — are range-partitioned on X.
	slices.SortFunc(items, func(a, b Item) int {
		return cmpFloat(a.MBR.Center().X, b.MBR.Center().X)
	})
	chunkLen := (len(items) + workers - 1) / workers
	var chunks [][]Item
	for start := 0; start < len(items); start += chunkLen {
		end := start + chunkLen
		if end > len(items) {
			end = len(items)
		}
		chunks = append(chunks, items[start:end])
	}

	// Phase 2: cluster subtrees in parallel.
	subLeaves := make([][]*node, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c []Item) {
			defer wg.Done()
			subLeaves[i] = packLeaves(c, t.maxEntries)
		}(i, c)
	}
	wg.Wait()

	// Phase 3: merge. All partitions produced leaves at the same level,
	// so concatenating the leaf lists and packing upward yields a valid
	// tree with uniform leaf depth.
	var leaves []*node
	for _, ls := range subLeaves {
		leaves = append(leaves, ls...)
	}
	root, height := packUpward(leaves, t.maxEntries)
	t.root = root
	t.height = height
	t.size = len(items)
	return t
}

// ParallelBulkLoadSim performs the same build as ParallelBulkLoad but
// under a multi-processor simulator for single-core hosts: each
// partition's subtree clustering runs serially and is timed in
// isolation, and the reported clusterMakespan is the maximum instance
// time (the parallel phase's completion time on `workers` processors).
// mergeTime is the inherently serial upper-level merge. The resulting
// tree is identical to a ParallelBulkLoad with the same inputs.
func ParallelBulkLoadSim(items []Item, maxEntries, workers int) (tree *Tree, clusterMakespan, mergeTime time.Duration) {
	if workers < 1 {
		workers = 1
	}
	t := New(maxEntries)
	if len(items) == 0 {
		return t, 0, 0
	}
	if workers == 1 || len(items) < workers*t.maxEntries*2 {
		t0 := time.Now()
		tr := BulkLoad(items, maxEntries)
		return tr, time.Since(t0), 0
	}
	slices.SortFunc(items, func(a, b Item) int {
		return cmpFloat(a.MBR.Center().X, b.MBR.Center().X)
	})
	chunkLen := (len(items) + workers - 1) / workers
	var leaves []*node
	for start := 0; start < len(items); start += chunkLen {
		end := start + chunkLen
		if end > len(items) {
			end = len(items)
		}
		t0 := time.Now()
		ls := packLeaves(items[start:end], t.maxEntries)
		if d := time.Since(t0); d > clusterMakespan {
			clusterMakespan = d
		}
		leaves = append(leaves, ls...)
	}
	t0 := time.Now()
	root, height := packUpward(leaves, t.maxEntries)
	mergeTime = time.Since(t0)
	t.root = root
	t.height = height
	t.size = len(items)
	return t, clusterMakespan, mergeTime
}
