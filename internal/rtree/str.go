package rtree

import (
	"math"
	"slices"

	"spatialtf/internal/geom"
)

// BulkLoad builds a packed R-tree over items using the Sort-Tile-
// Recursive algorithm (Leutenegger et al., cited as [13] in the paper).
// STR is the "cluster subtrees" primitive of the paper's parallel R-tree
// creation: items are sorted by X centroid, cut into vertical slices,
// each slice sorted by Y, and packed into full leaves; upper levels are
// packed the same way over node centroids.
//
// items is reordered in place. maxEntries 0 selects DefaultMaxEntries.
func BulkLoad(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(items, t.maxEntries)
	root, height := packUpward(leaves, t.maxEntries)
	t.root = root
	t.height = height
	t.size = len(items)
	return t
}

// packLeaves groups items into packed leaf nodes via STR ordering.
func packLeaves(items []Item, maxEntries int) []*node {
	strSortItems(items, maxEntries)
	var leaves []*node
	start := 0
	for _, size := range groupSizes(len(items), maxEntries) {
		leaf := newNode(true, size)
		for _, it := range items[start : start+size] {
			leaf.pushLeaf(it.MBR, it.Interior, it.ID)
		}
		leaves = append(leaves, leaf)
		start += size
	}
	return leaves
}

// groupSizes splits n entries into ceil(n/maxEntries) groups of nearly
// equal size, so no group underflows the 40 % minimum occupancy (a naive
// "fill to maxEntries" packing would leave a possibly near-empty final
// node, breaking the R-tree occupancy invariant).
func groupSizes(n, maxEntries int) []int {
	if n == 0 {
		return nil
	}
	groups := (n + maxEntries - 1) / maxEntries
	per := n / groups
	rem := n % groups
	sizes := make([]int, groups)
	for i := range sizes {
		sizes[i] = per
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// cmpFloat orders two float64 keys for slices.SortFunc (strict weak
// ordering; the centroid keys are always finite here).
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// strSortItems orders items by the STR tiling: primary sort on X
// centroid, slice into ceil(sqrt(n/M)) vertical strips, then sort each
// strip on Y centroid.
func strSortItems(items []Item, maxEntries int) {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	slices.SortFunc(items, func(a, b Item) int {
		return cmpFloat(a.MBR.Center().X, b.MBR.Center().X)
	})
	sliceLen := sliceCount * maxEntries
	for start := 0; start < n; start += sliceLen {
		end := start + sliceLen
		if end > n {
			end = n
		}
		slices.SortFunc(items[start:end], func(a, b Item) int {
			return cmpFloat(a.MBR.Center().Y, b.MBR.Center().Y)
		})
	}
}

// packUpward builds internal levels over nodes until one root remains,
// returning the root and total height (the input nodes are at level 1 +
// their own internal height; callers pass leaves, so height counts from
// 1).
func packUpward(level []*node, maxEntries int) (*node, int) {
	height := 1
	for len(level) > 1 {
		level = packLevel(level, maxEntries)
		height++
	}
	return level[0], height
}

// packLevel groups the nodes of one level into parents using the same
// STR ordering over node-MBR centroids.
func packLevel(nodes []*node, maxEntries int) []*node {
	n := len(nodes)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	if sliceCount < 1 {
		sliceCount = 1
	}
	mbrs := make([]geom4, len(nodes))
	for i, nd := range nodes {
		m := nd.mbr()
		mbrs[i] = geom4{nd, m.Center().X, m.Center().Y, m}
	}
	slices.SortFunc(mbrs, func(a, b geom4) int { return cmpFloat(a.cx, b.cx) })
	sliceLen := sliceCount * maxEntries
	for start := 0; start < n; start += sliceLen {
		end := start + sliceLen
		if end > n {
			end = n
		}
		slices.SortFunc(mbrs[start:end], func(a, b geom4) int { return cmpFloat(a.cy, b.cy) })
	}
	var parents []*node
	start := 0
	for _, size := range groupSizes(n, maxEntries) {
		p := newNode(false, size)
		for _, g := range mbrs[start : start+size] {
			p.pushChild(g.m, g.n)
		}
		parents = append(parents, p)
		start += size
	}
	return parents
}

// geom4 carries a node with its centroid during level packing.
type geom4 struct {
	n      *node
	cx, cy float64
	m      geom.MBR
}
