package rtree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"spatialtf/internal/geom"
	"spatialtf/internal/storage"
)

// rid fabricates a distinct rowid from an integer.
func rid(i int) storage.RowID {
	return storage.RowID{Page: uint32(i/1000 + 1), Slot: uint16(i % 1000)}
}

// randomItems generates n random small rectangles in [0, span)^2.
func randomItems(rng *rand.Rand, n int, span float64) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * span
		y := rng.Float64() * span
		w := rng.Float64()*span/100 + 0.01
		h := rng.Float64()*span/100 + 0.01
		items[i] = Item{MBR: geom.MBR{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: rid(i)}
	}
	return items
}

// linearSearch is the oracle: filter all items by MBR intersection.
func linearSearch(items []Item, q geom.MBR) map[storage.RowID]bool {
	out := map[storage.RowID]bool{}
	for _, it := range items {
		if it.MBR.Intersects(q) {
			out[it.ID] = true
		}
	}
	return out
}

func collectSearch(t *Tree, q geom.MBR) map[storage.RowID]bool {
	out := map[storage.RowID]bool{}
	t.Search(q, func(it Item) bool {
		out[it.ID] = true
		return true
	})
	return out
}

func sameIDSet(a, b map[storage.RowID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(4)
	items := []Item{
		{MBR: geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, ID: rid(0)},
		{MBR: geom.MBR{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, ID: rid(1)},
		{MBR: geom.MBR{MinX: 0.5, MinY: 0.5, MaxX: 2, MaxY: 2}, ID: rid(2)},
	}
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	got := collectSearch(tr, geom.MBR{MinX: 0, MinY: 0, MaxX: 1.5, MaxY: 1.5})
	if !sameIDSet(got, map[storage.RowID]bool{rid(0): true, rid(2): true}) {
		t.Errorf("Search = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsInvalidMBR(t *testing.T) {
	tr := New(0)
	if err := tr.Insert(Item{MBR: geom.EmptyMBR(), ID: rid(0)}); err == nil {
		t.Errorf("empty MBR insert: want error")
	}
}

func TestSearchEqualsLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	items := randomItems(rng, 3000, 1000)
	tr := New(16)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		x := rng.Float64() * 900
		y := rng.Float64() * 900
		q := geom.MBR{MinX: x, MinY: y, MaxX: x + rng.Float64()*100, MaxY: y + rng.Float64()*100}
		want := linearSearch(items, q)
		got := collectSearch(tr, q)
		if !sameIDSet(got, want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := New(8)
	for _, it := range randomItems(rng, 500, 100) {
		tr.Insert(it)
	}
	n := 0
	tr.Search(geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, func(Item) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestSearchWithinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	items := randomItems(rng, 2000, 1000)
	tr := BulkLoad(append([]Item(nil), items...), 16)
	q := geom.MBR{MinX: 500, MinY: 500, MaxX: 510, MaxY: 510}
	for _, d := range []float64{0, 5, 50, 500} {
		want := map[storage.RowID]bool{}
		for _, it := range items {
			if it.MBR.Dist(q) <= d {
				want[it.ID] = true
			}
		}
		got := map[storage.RowID]bool{}
		tr.SearchWithinDist(q, d, func(it Item) bool {
			got[it.ID] = true
			return true
		})
		if !sameIDSet(got, want) {
			t.Fatalf("d=%g: got %d, want %d", d, len(got), len(want))
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	items := randomItems(rng, 1000, 500)
	tr := New(8)
	for _, it := range items {
		tr.Insert(it)
	}
	// Delete a random half.
	perm := rng.Perm(len(items))
	deleted := map[storage.RowID]bool{}
	for _, i := range perm[:500] {
		if err := tr.Delete(items[i]); err != nil {
			t.Fatalf("Delete(%v): %v", items[i].ID, err)
		}
		deleted[items[i].ID] = true
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remaining items all findable; deleted ones gone.
	got := collectSearch(tr, geom.MBR{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500})
	for _, it := range items {
		if deleted[it.ID] && got[it.ID] {
			t.Errorf("deleted item %v still found", it.ID)
		}
		if !deleted[it.ID] && !got[it.ID] {
			t.Errorf("surviving item %v lost", it.ID)
		}
	}
	// Delete of a missing item errors.
	if err := tr.Delete(items[perm[0]]); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	items := randomItems(rng, 300, 100)
	tr := New(6)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items {
		if err := tr.Delete(it); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("after delete-all: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable.
	tr.Insert(items[0])
	if got := collectSearch(tr, items[0].MBR); len(got) != 1 {
		t.Errorf("reuse after delete-all failed")
	}
}

func TestBulkLoadEqualsDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 5, 33, 500, 4000} {
		items := randomItems(rng, n, 1000)
		packed := BulkLoad(append([]Item(nil), items...), 16)
		if err := packed.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if packed.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, packed.Len())
		}
		dyn := New(16)
		for _, it := range items {
			dyn.Insert(it)
		}
		for trial := 0; trial < 20; trial++ {
			x := rng.Float64() * 900
			y := rng.Float64() * 900
			q := geom.MBR{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
			if !sameIDSet(collectSearch(packed, q), collectSearch(dyn, q)) {
				t.Fatalf("n=%d trial %d: packed and dynamic disagree", n, trial)
			}
		}
	}
}

func TestBulkLoadIsShallower(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	items := randomItems(rng, 10000, 1000)
	packed := BulkLoad(append([]Item(nil), items...), 32)
	dyn := New(32)
	for _, it := range items {
		dyn.Insert(it)
	}
	if packed.Height() > dyn.Height() {
		t.Errorf("packed height %d > dynamic height %d", packed.Height(), dyn.Height())
	}
	ps, ds := packed.Stats(), dyn.Stats()
	if ps.AvgFanout < ds.AvgFanout {
		t.Errorf("packed fanout %.1f < dynamic %.1f", ps.AvgFanout, ds.AvgFanout)
	}
}

func TestParallelBulkLoadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	items := randomItems(rng, 20000, 1000)
	serial := BulkLoad(append([]Item(nil), items...), 32)
	for _, w := range []int{1, 2, 3, 4, 8} {
		par := ParallelBulkLoad(append([]Item(nil), items...), 32, w)
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("workers=%d: Len %d vs %d", w, par.Len(), serial.Len())
		}
		for trial := 0; trial < 25; trial++ {
			x := rng.Float64() * 900
			y := rng.Float64() * 900
			q := geom.MBR{MinX: x, MinY: y, MaxX: x + 50, MaxY: y + 50}
			if !sameIDSet(collectSearch(par, q), collectSearch(serial, q)) {
				t.Fatalf("workers=%d trial %d: results differ", w, trial)
			}
		}
	}
}

func TestItemsReturnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	items := randomItems(rng, 1234, 300)
	tr := BulkLoad(append([]Item(nil), items...), 16)
	got := tr.Items()
	if len(got) != len(items) {
		t.Fatalf("Items returned %d, want %d", len(got), len(items))
	}
	ids := map[storage.RowID]bool{}
	for _, it := range got {
		ids[it.ID] = true
	}
	for _, it := range items {
		if !ids[it.ID] {
			t.Errorf("item %v missing from Items()", it.ID)
		}
	}
}

func TestStatsAndBounds(t *testing.T) {
	tr := New(8)
	s := tr.Stats()
	if s.Items != 0 || s.Height != 1 || s.Nodes != 1 {
		t.Errorf("empty stats = %+v", s)
	}
	if !tr.Bounds().IsEmpty() {
		t.Errorf("empty tree Bounds = %v", tr.Bounds())
	}
	rng := rand.New(rand.NewSource(79))
	for _, it := range randomItems(rng, 2000, 100) {
		tr.Insert(it)
	}
	s = tr.Stats()
	if s.Items != 2000 || s.Height < 3 || s.Leaves < 2000/9 {
		t.Errorf("stats = %+v", s)
	}
	b := tr.Bounds()
	if !(geom.MBR{MinX: 0, MinY: 0, MaxX: 102, MaxY: 102}).Contains(b) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestSubtreeRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	items := randomItems(rng, 5000, 1000)
	tr := BulkLoad(items, 16)
	h := tr.Height()
	if h < 3 {
		t.Fatalf("tree too shallow for the test: height %d", h)
	}
	// Descend 0 = root itself.
	roots := tr.SubtreeRoots(0)
	if len(roots) != 1 || roots[0].Level() != h {
		t.Fatalf("SubtreeRoots(0) = %v", roots)
	}
	prevCount := 1
	for d := 1; d < h; d++ {
		roots = tr.SubtreeRoots(d)
		if len(roots) < prevCount {
			t.Errorf("descend %d: %d roots, fewer than previous %d", d, len(roots), prevCount)
		}
		prevCount = len(roots)
		// Every root at the right level, and together they cover all items.
		total := 0
		for _, r := range roots {
			if r.Level() != h-d {
				t.Fatalf("descend %d: root at level %d", d, r.Level())
			}
			total += len(r.Items(nil))
		}
		if total != len(items) {
			t.Fatalf("descend %d: subtrees cover %d items, want %d", d, total, len(items))
		}
	}
	// Descending past the leaves is capped.
	deep := tr.SubtreeRoots(99)
	for _, r := range deep {
		if !r.IsLeaf() {
			t.Errorf("over-descend returned non-leaf %v", r)
		}
	}
	if got := New(4).SubtreeRoots(1); got != nil {
		t.Errorf("empty tree SubtreeRoots = %v", got)
	}
}

func TestSubtreeRootsAtLeast(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	tr := BulkLoad(randomItems(rng, 5000, 1000), 16)
	for _, want := range []int{1, 2, 4, 8, 64} {
		roots := tr.SubtreeRootsAtLeast(want)
		if len(roots) < want && len(roots) < tr.Stats().Leaves {
			t.Errorf("AtLeast(%d) = %d roots", want, len(roots))
		}
	}
	// A request beyond the leaf count returns the leaf level.
	leaves := tr.Stats().Leaves
	roots := tr.SubtreeRootsAtLeast(leaves * 10)
	if len(roots) != leaves {
		t.Errorf("AtLeast(huge) = %d roots, want %d leaves", len(roots), leaves)
	}
}

func TestNodeRefAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	items := randomItems(rng, 200, 100)
	tr := BulkLoad(items, 8)
	root := tr.Root()
	if root.IsZero() {
		t.Fatal("zero root")
	}
	if root.Level() != tr.Height() {
		t.Errorf("root level %d, height %d", root.Level(), tr.Height())
	}
	if root.MBR() != tr.Bounds() {
		t.Errorf("root MBR %v != Bounds %v", root.MBR(), tr.Bounds())
	}
	// Walk down to a leaf verifying entry MBR containment.
	n := root
	for !n.IsLeaf() {
		if n.NumEntries() == 0 {
			t.Fatal("empty internal node")
		}
		for i := 0; i < n.NumEntries(); i++ {
			if !n.MBR().Contains(n.EntryMBR(i)) {
				t.Errorf("entry %d MBR not contained in node MBR", i)
			}
		}
		n = n.Child(0)
	}
	for i := 0; i < n.NumEntries(); i++ {
		if !n.EntryID(i).IsValid() {
			t.Errorf("leaf entry %d has invalid rowid", i)
		}
	}
	if (NodeRef{}).IsZero() != true {
		t.Errorf("zero NodeRef not IsZero")
	}
	if s := (NodeRef{}).String(); s != "NodeRef(nil)" {
		t.Errorf("zero String = %q", s)
	}
	if s := root.String(); s == "" {
		t.Errorf("root String empty")
	}
}

// TestInsertSearchProperty: after any interleaving of inserts the tree
// agrees with a linear scan for random windows, and Validate passes.
func TestInsertSearchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(800) + 1
		items := randomItems(rng, n, 200)
		tr := New(4 + rng.Intn(28))
		for _, it := range items {
			tr.Insert(it)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 10; q++ {
			x := rng.Float64() * 200
			y := rng.Float64() * 200
			w := geom.MBR{MinX: x, MinY: y, MaxX: x + rng.Float64()*50, MaxY: y + rng.Float64()*50}
			if !sameIDSet(collectSearch(tr, w), linearSearch(items, w)) {
				t.Fatalf("trial %d query %d: mismatch", trial, q)
			}
		}
	}
}

// TestMixedInsertDeleteProperty interleaves inserts and deletes and
// checks consistency against a model map.
func TestMixedInsertDeleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	tr := New(8)
	model := map[storage.RowID]Item{}
	nextID := 0
	for op := 0; op < 3000; op++ {
		if len(model) == 0 || rng.Float64() < 0.6 {
			it := randomItems(rng, 1, 100)[0]
			it.ID = rid(nextID)
			nextID++
			tr.Insert(it)
			model[it.ID] = it
		} else {
			// Delete a random model element.
			var victim Item
			k := rng.Intn(len(model))
			for _, v := range model {
				if k == 0 {
					victim = v
					break
				}
				k--
			}
			if err := tr.Delete(victim); err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			delete(model, victim.ID)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := collectSearch(tr, geom.MBR{MinX: -1, MinY: -1, MaxX: 102, MaxY: 102})
	if len(got) != len(model) {
		t.Fatalf("full window found %d, model %d", len(got), len(model))
	}
	for id := range model {
		if !got[id] {
			t.Errorf("model item %v missing", id)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	cases := []struct {
		n, max int
	}{
		{0, 32}, {1, 32}, {32, 32}, {33, 32}, {63, 32}, {64, 32}, {1000, 32}, {7, 4},
	}
	for _, c := range cases {
		sizes := groupSizes(c.n, c.max)
		sum := 0
		for _, s := range sizes {
			sum += s
			if s > c.max {
				t.Errorf("n=%d max=%d: group size %d overflows", c.n, c.max, s)
			}
			if len(sizes) > 1 && s < c.max*2/5 {
				t.Errorf("n=%d max=%d: group size %d underflows", c.n, c.max, s)
			}
		}
		if sum != c.n {
			t.Errorf("n=%d max=%d: sizes sum to %d", c.n, c.max, sum)
		}
		// Sizes must be within 1 of each other.
		if len(sizes) > 0 {
			sorted := append([]int(nil), sizes...)
			sort.Ints(sorted)
			if sorted[len(sorted)-1]-sorted[0] > 1 {
				t.Errorf("n=%d max=%d: uneven sizes %v", c.n, c.max, sizes)
			}
		}
	}
}
