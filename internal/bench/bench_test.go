package bench

import (
	"strings"
	"testing"
)

// The harness tests run miniature configurations; the real sizes run in
// the repository-root benchmarks and cmd/spatialbench.

func TestRunTable1Small(t *testing.T) {
	// 100 counties tile a 10x10 grid of 100-unit cells; 80 units pulls
	// in next-ring neighbours.
	rows, err := RunTable1(Table1Options{
		Counties:  100,
		Seed:      1,
		Distances: []float64{0, 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ResultSize == 0 {
		t.Errorf("d=0 result empty")
	}
	if rows[1].ResultSize <= rows[0].ResultSize {
		t.Errorf("result did not grow with distance: %d then %d", rows[0].ResultSize, rows[1].ResultSize)
	}
	for _, r := range rows {
		if r.NestedLoop <= 0 || r.IndexJoin <= 0 {
			t.Errorf("missing timings: %+v", r)
		}
	}
	// The index join must do far fewer logical index accesses than the
	// nested loop — the metric in which the paper's gap reproduces.
	for _, r := range rows {
		if r.IJGets >= r.NLGets {
			t.Errorf("d=%g: index join gets %d >= nested loop gets %d", r.Distance, r.IJGets, r.NLGets)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Gets ratio") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunTable2Small(t *testing.T) {
	rows, err := RunTable2(Table2Options{
		Sizes:               []int{25, 500},
		Seed:                2,
		Workers2:            2,
		SkipNestedLoopAbove: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NLSkipped {
		t.Errorf("n=25 nested loop skipped")
	}
	if !rows[1].NLSkipped {
		t.Errorf("n=500 nested loop not skipped despite bound")
	}
	if rows[1].ResultSize < rows[1].DataSize {
		t.Errorf("self-join result %d smaller than data size", rows[1].ResultSize)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "(skipped)") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunTable3Small(t *testing.T) {
	rows, err := RunTable3(Table3Options{
		BlockGroups: 400,
		Seed:        3,
		Workers:     []int{1, 2},
		TilingLevel: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Quadtree <= 0 || r.Rtree <= 0 {
			t.Errorf("missing timings: %+v", r)
		}
		// The Table 3 premise: quadtree creation costs more than R-tree
		// creation on complex polygons.
		if r.Quadtree < r.Rtree {
			t.Errorf("workers=%d: quadtree %v faster than rtree %v", r.Workers, r.Quadtree, r.Rtree)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Speedup at 2 processors") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunFigure1(t *testing.T) {
	r, err := RunFigure1(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.RootsA < 2 || r.RootsB < 2 {
		t.Fatalf("too few subtree roots: %d, %d", r.RootsA, r.RootsB)
	}
	if len(r.Pairs)+r.PrunedPairs != r.RootsA*r.RootsB {
		t.Errorf("pairs %d + pruned %d != cross product %d", len(r.Pairs), r.PrunedPairs, r.RootsA*r.RootsB)
	}
	for _, label := range r.Pairs {
		if !strings.HasPrefix(label, "(R1") || !strings.Contains(label, ", S1") {
			t.Errorf("bad pair label %q", label)
		}
	}
	out := FormatFigure1(r)
	if !strings.Contains(out, "Join pairs of subtrees") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunFigure2(t *testing.T) {
	r, err := RunFigure2(300, 3, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.GeometryRows != 300 {
		t.Fatalf("geometry rows = %d", r.GeometryRows)
	}
	total := 0
	for _, p := range r.Partitions {
		total += p
	}
	if total != 300 {
		t.Errorf("partitions cover %d rows", total)
	}
	if len(r.Partitions) != 3 {
		t.Errorf("partition count = %d", len(r.Partitions))
	}
	if r.TileRows == 0 || r.IndexEntries != r.TileRows {
		t.Errorf("tile rows %d, index entries %d", r.TileRows, r.IndexEntries)
	}
	out := FormatFigure2(r)
	if !strings.Contains(out, "tessellator instances") {
		t.Errorf("format output:\n%s", out)
	}
}
