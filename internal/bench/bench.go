// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4.3 and §5.1). The same runs
// back the testing.B benchmarks in the repository root and the
// cmd/spatialbench binary.
//
// Dataset sizes default to laptop-scale fractions of the paper's
// proprietary datasets; the options let callers run the full sizes
// (3230 counties / 250K stars / 230K block groups). The reproduction
// target is the shape of each result — who wins, by what factor, where
// the crossover falls — not the absolute 2003-hardware numbers.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"spatialtf/internal/datagen"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/storage"
)

// buildJoinSource loads ds and creates its R-tree.
func buildJoinSource(name string, ds datagen.Dataset, fanout int) (sjoin.Source, error) {
	tab, _, err := datagen.LoadTable(name, ds)
	if err != nil {
		return sjoin.Source{}, err
	}
	tree, _, err := idxbuild.CreateRtree(tab, "geom", fanout, 1)
	if err != nil {
		return sjoin.Source{}, err
	}
	return sjoin.Source{Table: tab, Column: "geom", Tree: tree}, nil
}

// --- Table 1: counties self-join, distance sweep ---

// Table1Options parameterises the counties experiment.
type Table1Options struct {
	// Counties is the dataset size (paper: 3230).
	Counties int
	// Seed fixes the generator.
	Seed int64
	// Distances is the sweep; 0 means plain intersection, matching the
	// paper's "specifying either intersection (distance of 0) or ... a
	// distance".
	Distances []float64
}

// DefaultTable1Options returns the paper-scale configuration. A nil
// Distances slice makes RunTable1 derive a sweep from the county cell
// size, growing the result set by roughly the same factors as the
// paper's Table 1 (every county already touches its 8 neighbours, so
// meaningful growth starts near one cell diameter).
func DefaultTable1Options() Table1Options {
	return Table1Options{Counties: 3230, Seed: 1}
}

// defaultDistances derives the Table 1 sweep from the dataset size: the
// counties tile a √n × √n grid, so one cell spans world/√n units.
func defaultDistances(counties int) []float64 {
	side := math.Ceil(math.Sqrt(float64(counties)))
	cell := datagen.World.Width() / side
	return []float64{0, 0.4 * cell, 0.8 * cell, 1.2 * cell}
}

// Table1Row is one line of Table 1. Alongside wall time it reports the
// logical index accesses ("buffer gets") of each strategy — the cost a
// disk-resident 2003 execution is dominated by, and the column in which
// the paper's nested-loop/index-join gap shows on an in-memory engine.
type Table1Row struct {
	Distance   float64
	ResultSize int
	NestedLoop time.Duration
	NLGets     int
	IndexJoin  time.Duration
	IJGets     int
}

// RunTable1 regenerates Table 1: for each distance, the counties
// self-join evaluated by nested loop and by the spatial_join table
// function.
func RunTable1(opt Table1Options) ([]Table1Row, error) {
	if opt.Distances == nil {
		opt.Distances = defaultDistances(opt.Counties)
	}
	src, err := buildJoinSource("counties", datagen.Counties(opt.Counties, opt.Seed), 0)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, d := range opt.Distances {
		cfg := sjoin.DefaultConfig()
		cfg.Distance = d

		t0 := time.Now()
		nl, nlStats, err := sjoin.NestedLoopStats(src, src, cfg)
		if err != nil {
			return nil, err
		}
		nlTime := time.Since(t0)

		fn, err := sjoin.NewJoinFunction(src, src, cfg)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		ijCount, ijStats, err := sjoin.RunJoinFunction(fn, 0)
		if err != nil {
			return nil, err
		}
		ijTime := time.Since(t0)

		if len(nl) != ijCount {
			return nil, fmt.Errorf("bench: result mismatch at d=%g: nested loop %d, index join %d", d, len(nl), ijCount)
		}
		rows = append(rows, Table1Row{
			Distance:   d,
			ResultSize: ijCount,
			NestedLoop: nlTime,
			NLGets:     nlStats.NodeAccesses,
			IndexJoin:  ijTime,
			IJGets:     ijStats.NodeAccesses,
		})
	}
	return rows, nil
}

// --- Table 2: star-cluster self-join, size sweep, 1 and 2 processors ---

// Table2Options parameterises the star-cluster experiment.
type Table2Options struct {
	// Sizes is the subset sweep (paper: 25, 2.5K, 25K, 100K, 250K).
	Sizes []int
	Seed  int64
	// Workers2 is the parallel degree of the second index-join column
	// (paper: 2 processors).
	Workers2 int
	// SkipNestedLoopAbove skips the nested-loop run for sizes above this
	// bound (0 = never skip); the full 250K nested loop is the slowest
	// cell of the whole reproduction.
	SkipNestedLoopAbove int
	// SimulateProcessors selects the deterministic multi-processor
	// simulator for the parallel column instead of goroutine wall-clock.
	// Required on hosts with fewer cores than Workers2 (the paper used a
	// 4-CPU machine); AutoSimulate picks it when needed.
	SimulateProcessors bool
}

// AutoSimulate reports whether the host has too few cores to
// demonstrate `workers`-way parallel speedup with wall-clock timing.
func AutoSimulate(workers int) bool {
	return runtime.NumCPU() < workers
}

// DefaultTable2Options returns the paper-scale configuration.
func DefaultTable2Options() Table2Options {
	return Table2Options{
		Sizes:              []int{25, 2500, 25000, 100000, 250000},
		Seed:               2,
		Workers2:           2,
		SimulateProcessors: AutoSimulate(2),
	}
}

// Table2Row is one line of Table 2 (buffer-gets columns as in Table 1).
type Table2Row struct {
	DataSize   int
	ResultSize int
	NestedLoop time.Duration // 0 when skipped
	NLSkipped  bool
	NLGets     int
	IndexJoin1 time.Duration
	IJGets     int
	IndexJoin2 time.Duration
}

// RunTable2 regenerates Table 2: self-joins of star-cluster subsets by
// nested loop, 1-worker index join, and Workers2-worker parallel join.
func RunTable2(opt Table2Options) ([]Table2Row, error) {
	if opt.Workers2 < 2 {
		opt.Workers2 = 2
	}
	full := datagen.Stars(maxInt(opt.Sizes), opt.Seed)
	var rows []Table2Row
	for _, n := range opt.Sizes {
		subset := datagen.Dataset{Name: "stars", Geoms: full.Geoms[:n], Bounds: full.Bounds}
		src, err := buildJoinSource(fmt.Sprintf("stars_%d", n), subset, 0)
		if err != nil {
			return nil, err
		}
		cfg := sjoin.DefaultConfig()
		row := Table2Row{DataSize: n}

		nlRan := false
		if opt.SkipNestedLoopAbove > 0 && n > opt.SkipNestedLoopAbove {
			row.NLSkipped = true
		} else {
			t0 := time.Now()
			nl, nlStats, err := sjoin.NestedLoopStats(src, src, cfg)
			if err != nil {
				return nil, err
			}
			row.NestedLoop = time.Since(t0)
			row.NLGets = nlStats.NodeAccesses
			row.ResultSize = len(nl)
			nlRan = true
		}

		fn, err := sjoin.NewJoinFunction(src, src, cfg)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		i1Count, i1Stats, err := sjoin.RunJoinFunction(fn, 0)
		if err != nil {
			return nil, err
		}
		row.IndexJoin1 = time.Since(t0)
		row.IJGets = i1Stats.NodeAccesses
		if !nlRan {
			row.ResultSize = i1Count
		} else if row.ResultSize != i1Count {
			return nil, fmt.Errorf("bench: n=%d result mismatch: nested loop %d, index join %d", n, row.ResultSize, i1Count)
		}

		var i2 int
		if opt.SimulateProcessors {
			res, err := sjoin.SimulateParallelIndexJoin(src, src, cfg, opt.Workers2)
			if err != nil {
				return nil, err
			}
			row.IndexJoin2 = res.Elapsed
			i2 = len(res.Pairs)
		} else {
			t0 = time.Now()
			pcur, err := sjoin.ParallelIndexJoin(src, src, cfg, opt.Workers2)
			if err != nil {
				return nil, err
			}
			pp, err := sjoin.CollectPairs(pcur)
			if err != nil {
				return nil, err
			}
			row.IndexJoin2 = time.Since(t0)
			i2 = len(pp)
		}
		if i2 != i1Count {
			return nil, fmt.Errorf("bench: n=%d parallel join %d pairs, serial %d", n, i2, i1Count)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table 3: parallel index creation ---

// Table3Options parameterises the block-groups index-creation
// experiment.
type Table3Options struct {
	// BlockGroups is the dataset size (paper: ~230K).
	BlockGroups int
	Seed        int64
	// Workers is the parallelism sweep (paper: 1, 2, 4).
	Workers []int
	// TilingLevel is the quadtree tiling level.
	TilingLevel int
	// SimulateProcessors selects the multi-processor simulator (see
	// Table2Options.SimulateProcessors).
	SimulateProcessors bool
}

// DefaultTable3Options returns the paper-scale configuration.
func DefaultTable3Options() Table3Options {
	return Table3Options{
		BlockGroups:        230000,
		Seed:               3,
		Workers:            []int{1, 2, 4},
		TilingLevel:        9,
		SimulateProcessors: AutoSimulate(4),
	}
}

// Table3Row is one line of Table 3.
type Table3Row struct {
	Workers      int
	Quadtree     time.Duration
	QuadtreeTess time.Duration // tessellation (load) phase share
	Rtree        time.Duration
}

// RunTable3 regenerates Table 3: quadtree and R-tree creation times on
// the block-groups data at each parallel degree.
func RunTable3(opt Table3Options) ([]Table3Row, error) {
	ds := datagen.BlockGroups(opt.BlockGroups, opt.Seed)
	tab, _, err := datagen.LoadTable("blockgroups", ds)
	if err != nil {
		return nil, err
	}
	grid, err := quadtree.NewGrid(ds.Bounds, opt.TilingLevel)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, w := range opt.Workers {
		var qs, rs idxbuild.Stats
		if opt.SimulateProcessors {
			_, q, err := idxbuild.CreateQuadtreeSim(tab, "geom", grid, w)
			if err != nil {
				return nil, err
			}
			_, r, err := idxbuild.CreateRtreeSim(tab, "geom", 0, w)
			if err != nil {
				return nil, err
			}
			qs, rs = q.Stats, r.Stats
		} else {
			var err error
			_, qs, err = idxbuild.CreateQuadtree(tab, "geom", grid, w)
			if err != nil {
				return nil, err
			}
			_, rs, err = idxbuild.CreateRtree(tab, "geom", 0, w)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, Table3Row{
			Workers:      w,
			Quadtree:     qs.Total,
			QuadtreeTess: qs.LoadPhase,
			Rtree:        rs.Total,
		})
	}
	return rows, nil
}

// --- Figure 1: subtree-pair decomposition demo ---

// Figure1Result is the executable rendering of Figure 1: the subtree
// roots of the two indexes after a one-level descent and the join pairs
// scheduled from them.
type Figure1Result struct {
	RootsA, RootsB int
	Pairs          []string // labels like "(R11, S11)"
	PrunedPairs    int      // MBR-disjoint pairs skipped
}

// RunFigure1 builds two small indexes and enumerates their subtree join
// pairs exactly as §4.1 describes. The first operand is a clustered
// star set, the second a contiguous counties map (which tiles the whole
// domain), so overlapping subtree pairs exist at any scale while some
// pairs still prune.
func RunFigure1(n int, seed int64) (Figure1Result, error) {
	a, err := buildJoinSource("fig1_a", datagen.Stars(n, seed), 8)
	if err != nil {
		return Figure1Result{}, err
	}
	b, err := buildJoinSource("fig1_b", datagen.Counties(n/4+1, seed+1), 8)
	if err != nil {
		return Figure1Result{}, err
	}
	cfg := sjoin.DefaultConfig()
	ra := a.Tree.SubtreeRoots(1)
	rb := b.Tree.SubtreeRoots(1)
	pairs := sjoin.SubtreePairs(a.Tree, b.Tree, 1, cfg)
	res := Figure1Result{
		RootsA:      len(ra),
		RootsB:      len(rb),
		PrunedPairs: len(ra)*len(rb) - len(pairs),
	}
	// Label pairs R1i / S1j in root order, as in the figure.
	for _, p := range pairs {
		ia := indexOfRoot(ra, p.A)
		ib := indexOfRoot(rb, p.B)
		res.Pairs = append(res.Pairs, fmt.Sprintf("(R1%d, S1%d)", ia+1, ib+1))
	}
	return res, nil
}

// indexOfRoot locates a subtree root within the enumeration order.
func indexOfRoot(roots []rtree.NodeRef, want rtree.NodeRef) int {
	for i, r := range roots {
		if r == want {
			return i
		}
	}
	return -1
}

// --- Figure 2: parallel quadtree creation pipeline demo ---

// Figure2Result is the executable rendering of Figure 2: row counts at
// each pipeline stage of the parallel quadtree build.
type Figure2Result struct {
	GeometryRows int
	Partitions   []int // geometry rows per tessellator instance
	TileRows     int   // index-table rows produced
	IndexEntries int   // entries in the final B-tree
}

// RunFigure2 drives the Figure 2 pipeline with instrumentation.
func RunFigure2(n, workers int, seed int64, level int) (Figure2Result, error) {
	ds := datagen.BlockGroups(n, seed)
	tab, _, err := datagen.LoadTable("fig2", ds)
	if err != nil {
		return Figure2Result{}, err
	}
	grid, err := quadtree.NewGrid(ds.Bounds, level)
	if err != nil {
		return Figure2Result{}, err
	}
	res := Figure2Result{GeometryRows: tab.Len()}
	// Count the partition sizes the table function would receive.
	for _, r := range tab.PageRanges(workers) {
		count := 0
		tab.ScanRange(r[0], r[1], func(storage.RowID, storage.Row) bool {
			count++
			return true
		})
		res.Partitions = append(res.Partitions, count)
	}
	idx, stats, err := idxbuild.CreateQuadtree(tab, "geom", grid, workers)
	if err != nil {
		return Figure2Result{}, err
	}
	res.TileRows = stats.Entries
	res.IndexEntries = idx.EntryCount()
	return res, nil
}

// --- helpers ---

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
