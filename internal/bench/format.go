package bench

import (
	"fmt"
	"strings"
	"time"
)

// This file renders experiment results as the text tables the
// cmd/spatialbench binary prints, in the same row/column layout as the
// paper's tables.

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// FormatTable1 renders Table 1. "Gets" are logical index-node accesses
// (buffer gets); a 2003 disk-resident execution's time is dominated by
// them, so the gets ratio is where the paper's nested-loop/index-join
// gap is expected to reproduce on an in-memory engine.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1. Counties self-join: nested-loop vs spatial-index join\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-10s %-12s %-10s %-10s %s\n",
		"Distance", "Result Size", "Nested Loop", "NL gets", "Index Join", "IJ gets", "Time", "Gets ratio")
	for _, r := range rows {
		speedup := "-"
		if r.IndexJoin > 0 && r.NestedLoop > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(r.NestedLoop)/float64(r.IndexJoin))
		}
		gets := "-"
		if r.IJGets > 0 {
			gets = fmt.Sprintf("%.2fx", float64(r.NLGets)/float64(r.IJGets))
		}
		fmt.Fprintf(&b, "%-10g %-12d %-12s %-10d %-12s %-10d %-10s %s\n",
			r.Distance, r.ResultSize, fmtDur(r.NestedLoop), r.NLGets,
			fmtDur(r.IndexJoin), r.IJGets, speedup, gets)
	}
	return b.String()
}

// FormatTable2 renders Table 2 ("gets" as in Table 1; the paper's ~6x
// nested-loop penalty at scale shows in the gets ratio).
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2. Star-cluster self-join: nested loop vs index join on 1 and 2 processors\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-14s %-14s %-10s %-10s %s\n",
		"Data size", "Result size", "Nested loop", "Index Join(1)", "Index Join(2)", "NL/I1", "Gets ratio", "I1/I2")
	for _, r := range rows {
		nl := fmtDur(r.NestedLoop)
		if r.NLSkipped {
			nl = "(skipped)"
		}
		nlRatio := "-"
		if !r.NLSkipped && r.IndexJoin1 > 0 {
			nlRatio = fmt.Sprintf("%.2fx", float64(r.NestedLoop)/float64(r.IndexJoin1))
		}
		gets := "-"
		if !r.NLSkipped && r.IJGets > 0 {
			gets = fmt.Sprintf("%.2fx", float64(r.NLGets)/float64(r.IJGets))
		}
		parRatio := "-"
		if r.IndexJoin2 > 0 {
			parRatio = fmt.Sprintf("%.2fx", float64(r.IndexJoin1)/float64(r.IndexJoin2))
		}
		fmt.Fprintf(&b, "%-10d %-12d %-12s %-14s %-14s %-10s %-10s %s\n",
			r.DataSize, r.ResultSize, nl, fmtDur(r.IndexJoin1), fmtDur(r.IndexJoin2), nlRatio, gets, parRatio)
	}
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3. Parallel Quadtree and R-tree creation times using table functions\n")
	fmt.Fprintf(&b, "%-12s %-20s %-18s %-18s\n",
		"Processors", "Quadtree Creation", "  (tessellation)", "R-tree Creation")
	var q1, r1 time.Duration
	for i, r := range rows {
		if i == 0 {
			q1, r1 = r.Quadtree, r.Rtree
		}
		fmt.Fprintf(&b, "%-12d %-20s %-18s %-18s\n",
			r.Workers, fmtDur(r.Quadtree), fmtDur(r.QuadtreeTess), fmtDur(r.Rtree))
	}
	if len(rows) > 1 {
		last := rows[len(rows)-1]
		fmt.Fprintf(&b, "Speedup at %d processors: Quadtree %.2fx, R-tree %.2fx\n",
			last.Workers,
			float64(q1)/float64(last.Quadtree),
			float64(r1)/float64(last.Rtree))
	}
	return b.String()
}

// FormatFigure1 renders the Figure 1 demonstration.
func FormatFigure1(r Figure1Result) string {
	var b strings.Builder
	b.WriteString("Figure 1. Joining two spatial indexes: subtree-pair decomposition\n")
	fmt.Fprintf(&b, "Index of first table:  %d subtree roots after descending 1 level (R11..R1%d)\n", r.RootsA, r.RootsA)
	fmt.Fprintf(&b, "Index of second table: %d subtree roots after descending 1 level (S11..S1%d)\n", r.RootsB, r.RootsB)
	fmt.Fprintf(&b, "Join pairs of subtrees for parallelism (%d scheduled, %d pruned as MBR-disjoint):\n",
		len(r.Pairs), r.PrunedPairs)
	fmt.Fprintf(&b, "  %s\n", strings.Join(r.Pairs, ", "))
	return b.String()
}

// FormatFigure2 renders the Figure 2 demonstration.
func FormatFigure2(r Figure2Result) string {
	var b strings.Builder
	b.WriteString("Figure 2. Parallelizing Quadtree index creation\n")
	fmt.Fprintf(&b, "Geometry table:        %d rows\n", r.GeometryRows)
	fmt.Fprintf(&b, "Table-fn partitioning: %d tessellator instances, partitions %v\n", len(r.Partitions), r.Partitions)
	fmt.Fprintf(&b, "Tessellate:            %d tile rows into the index table\n", r.TileRows)
	fmt.Fprintf(&b, "Index table (B-tree):  %d entries\n", r.IndexEntries)
	return b.String()
}
