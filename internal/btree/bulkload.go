package btree

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Entry is one key/value pair for bulk loading.
type Entry struct {
	Key   []byte
	Value []byte
}

// BulkLoad builds a tree bottom-up from entries, which need not be
// sorted (they are sorted in place). Duplicate keys keep the last
// occurrence, matching Insert-overwrite semantics. Bulk loading packs
// leaves to ~100% occupancy, the analogue of Oracle's fast B-tree
// creation path used when a spatial index is built (rather than
// maintained row by row).
func BulkLoad(entries []Entry) *Tree {
	sort.SliceStable(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].Key, entries[j].Key) < 0
	})
	return loadSorted(dedupe(entries))
}

// ParallelBulkLoad builds the tree using workers goroutines to sort
// partitions of entries concurrently before a single merge and a
// bottom-up load. It is the "parallel B-tree index" half of the paper's
// quadtree creation pipeline: parallel table functions tessellate in
// parallel, then the tile-code B-tree is built with the parallel clause.
func ParallelBulkLoad(entries []Entry, workers int) *Tree {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(entries) < 2*workers {
		return BulkLoad(entries)
	}
	// Sort chunks concurrently.
	chunkLen := (len(entries) + workers - 1) / workers
	var wg sync.WaitGroup
	var chunks [][]Entry
	for start := 0; start < len(entries); start += chunkLen {
		end := start + chunkLen
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[start:end]
		chunks = append(chunks, chunk)
		wg.Add(1)
		go func(c []Entry) {
			defer wg.Done()
			sort.SliceStable(c, func(i, j int) bool {
				return bytes.Compare(c[i].Key, c[j].Key) < 0
			})
		}(chunk)
	}
	wg.Wait()
	return loadSorted(dedupe(mergeChunks(chunks)))
}

// mergeChunks k-way merges sorted runs. With the small worker counts
// used here (≤ 16) a simple linear-scan heap substitute suffices.
func mergeChunks(chunks [][]Entry) []Entry {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]Entry, 0, total)
	pos := make([]int, len(chunks))
	for len(out) < total {
		best := -1
		for i, c := range chunks {
			if pos[i] >= len(c) {
				continue
			}
			if best == -1 || bytes.Compare(c[pos[i]].Key, chunks[best][pos[best]].Key) < 0 {
				best = i
			}
		}
		out = append(out, chunks[best][pos[best]])
		pos[best]++
	}
	return out
}

// dedupe collapses runs of equal keys, keeping the last value, in a
// sorted slice.
func dedupe(entries []Entry) []Entry {
	if len(entries) < 2 {
		return entries
	}
	out := entries[:1]
	for _, e := range entries[1:] {
		if bytes.Equal(out[len(out)-1].Key, e.Key) {
			out[len(out)-1] = e
		} else {
			out = append(out, e)
		}
	}
	return out
}

// loadSorted builds the tree bottom-up from strictly ascending entries.
func loadSorted(entries []Entry) *Tree {
	t := New()
	if len(entries) == 0 {
		return t
	}
	// Build packed leaves.
	var leaves []*node
	for start := 0; start < len(entries); start += degree {
		end := start + degree
		if end > len(entries) {
			end = len(entries)
		}
		leaf := &node{
			keys: make([][]byte, end-start),
			vals: make([][]byte, end-start),
		}
		for i := start; i < end; i++ {
			leaf.keys[i-start] = entries[i].Key
			leaf.vals[i-start] = entries[i].Value
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = leaf
		}
		leaves = append(leaves, leaf)
	}
	// Build internal levels until a single root remains.
	level := leaves
	for len(level) > 1 {
		var parents []*node
		fanout := degree + 1
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			// A parent needs at least two children; steal from the
			// previous parent if the tail is a singleton.
			if end-start == 1 && len(parents) > 0 {
				prev := parents[len(parents)-1]
				// Move the last child of prev into this group.
				stolen := prev.children[len(prev.children)-1]
				prev.children = prev.children[:len(prev.children)-1]
				prev.keys = prev.keys[:len(prev.keys)-1]
				p := &node{
					keys:     [][]byte{firstKey(level[start])},
					children: []*node{stolen, level[start]},
				}
				parents = append(parents, p)
				continue
			}
			p := &node{children: append([]*node(nil), level[start:end]...)}
			for i := start + 1; i < end; i++ {
				p.keys = append(p.keys, firstKey(level[i]))
			}
			parents = append(parents, p)
		}
		level = parents
	}
	t.root = level[0]
	t.size = len(entries)
	return t
}

// firstKey returns the smallest key under n.
func firstKey(n *node) []byte {
	for !n.isLeaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		panic(fmt.Sprintf("btree: empty node in bulk load: %+v", n))
	}
	return n.keys[0]
}
