// Package btree implements an in-memory B+-tree over byte-string keys.
// It is the substrate beneath the linear quadtree index: tessellated
// tile codes (with rowid suffixes) are the keys, exactly as Oracle
// Spatial stores quadtree tiles in a B-tree via the "create B-tree
// indexes on the codes for the tiles" step of the paper's §5.
//
// The tree supports point lookups, ordered range scans, deletion, a
// sorted bulk load (used by the parallel index build, which sorts
// partitions concurrently and merges), and is safe for concurrent
// readers with a single writer excluded by an RWMutex.
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// degree is the maximum number of keys per node. 64 keeps nodes around
// a cache-friendly few KiB for short tile-code keys.
const degree = 64

// ErrNotFound is returned by Get and Delete for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+-tree mapping byte-string keys to byte-string values.
// Keys are unique; Insert overwrites.
type Tree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// node is either a leaf (children nil, vals parallel to keys) or an
// internal node (len(children) == len(keys)+1, vals nil).
type node struct {
	keys     [][]byte
	vals     [][]byte
	children []*node
	next     *node // leaf-level chain for range scans
}

func (n *node) isLeaf() bool { return n.children == nil }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// search returns the index of the first key in n >= key.
func search(n *node, key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.isLeaf() {
		i := search(n, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		n = n.children[i]
	}
	i := search(n, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], nil
	}
	return nil, ErrNotFound
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) bool {
	_, err := t.Get(key)
	return err == nil
}

// Insert stores value under key, overwriting any existing entry. The
// key and value slices are retained; callers must not mutate them.
func (t *Tree) Insert(key, value []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	promotedKey, newChild, added := insert(t.root, key, value)
	if added {
		t.size++
	}
	if newChild != nil {
		t.root = &node{
			keys:     [][]byte{promotedKey},
			children: []*node{t.root, newChild},
		}
	}
}

// insert adds key/value under n. If n splits, it returns the key to
// promote and the new right sibling. added reports whether the key was
// new (vs. an overwrite).
func insert(n *node, key, value []byte) (promoted []byte, right *node, added bool) {
	if n.isLeaf() {
		i := search(n, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = value
			return nil, nil, false
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		if len(n.keys) <= degree {
			return nil, nil, true
		}
		pk, rn := splitLeaf(n)
		return pk, rn, true
	}
	i := search(n, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	promo, newChild, childAdded := insert(n.children[i], key, value)
	if newChild == nil {
		return nil, nil, childAdded
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promo
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= degree {
		return nil, nil, childAdded
	}
	pk, rn := splitInternal(n)
	return pk, rn, childAdded
}

// splitLeaf splits an over-full leaf and returns (separator, right).
func splitLeaf(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	right := &node{
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	// In a B+-tree the separator is the first key of the right leaf;
	// it stays in the leaf as well.
	return right.keys[0], right
}

// splitInternal splits an over-full internal node; the middle key moves
// up and does not remain in either half.
func splitInternal(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	promo := n.keys[mid]
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promo, right
}

// Delete removes key. It uses lazy deletion at the leaf (no rebalancing);
// node occupancy degrades only under adversarial delete-heavy workloads,
// which the spatial index maintenance path (delete + reinsert of a few
// tiles per DML) does not produce.
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.isLeaf() {
		i := search(n, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		n = n.children[i]
	}
	i := search(n, key)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return ErrNotFound
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return nil
}

// AscendRange calls fn for each entry with lo <= key < hi in ascending
// key order, stopping early if fn returns false. A nil hi means +inf.
func (t *Tree) AscendRange(lo, hi []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.isLeaf() {
		i := search(n, lo)
		if i < len(n.keys) && bytes.Equal(n.keys[i], lo) {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i := search(n, lo); i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		lo = nil // after the first leaf, take every key
	}
}

// AscendPrefix calls fn for each entry whose key begins with prefix, in
// ascending order. The quadtree query path uses it to fetch all entries
// under a tile code.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key, value []byte) bool) {
	hi := prefixUpperBound(prefix)
	t.AscendRange(prefix, hi, fn)
}

// prefixUpperBound returns the smallest key greater than every key with
// the given prefix, or nil if there is none (all-0xFF prefix).
func prefixUpperBound(prefix []byte) []byte {
	hi := append([]byte(nil), prefix...)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] != 0xFF {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}

// Ascend iterates the whole tree in order.
func (t *Tree) Ascend(fn func(key, value []byte) bool) {
	t.AscendRange(nil, nil, fn)
}

// Stats describes tree shape for the index-metadata report.
type Stats struct {
	Entries int
	Leaves  int
	Height  int
}

// Stats returns shape statistics.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Entries: t.size, Height: 1}
	n := t.root
	for !n.isLeaf() {
		s.Height++
		n = n.children[0]
	}
	for l := n; l != nil; l = l.next {
		s.Leaves++
	}
	return s
}

// Validate checks structural invariants (key order within and across
// nodes, child counts) and returns the first violation. Tests call it
// after mutation storms.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	count := 0
	if err := validateNode(t.root, nil, nil, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, count)
	}
	// Leaf chain must be globally sorted.
	n := t.root
	for !n.isLeaf() {
		n = n.children[0]
	}
	var prev []byte
	for l := n; l != nil; l = l.next {
		for _, k := range l.keys {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				return fmt.Errorf("btree: leaf chain out of order at %x", k)
			}
			prev = k
		}
	}
	return nil
}

func validateNode(n *node, lo, hi []byte, count *int) error {
	for i, k := range n.keys {
		if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
			return fmt.Errorf("btree: node keys out of order at %x", k)
		}
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return fmt.Errorf("btree: key %x below lower bound %x", k, lo)
		}
		if hi != nil && bytes.Compare(k, hi) > 0 {
			return fmt.Errorf("btree: key %x above upper bound %x", k, hi)
		}
	}
	if n.isLeaf() {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("btree: leaf has %d keys, %d vals", len(n.keys), len(n.vals))
		}
		*count += len(n.keys)
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: internal node has %d keys, %d children", len(n.keys), len(n.children))
	}
	for i, c := range n.children {
		var clo, chi []byte
		if i > 0 {
			clo = n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		} else {
			chi = hi
		}
		if err := validateNode(c, clo, chi, count); err != nil {
			return err
		}
	}
	return nil
}
