package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }

func TestInsertGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), val(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Errorf("Get(%d) = %q", i, v)
		}
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New()
	tr.Insert([]byte("a"), []byte("1"))
	tr.Insert([]byte("a"), []byte("2"))
	if tr.Len() != 1 {
		t.Errorf("Len after overwrite = %d", tr.Len())
	}
	v, _ := tr.Get([]byte("a"))
	if string(v) != "2" {
		t.Errorf("overwrite lost: %q", v)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New()
	perm := rng.Perm(5000)
	for _, i := range perm {
		tr.Insert(key(i), val(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// In-order scan must be sorted and complete.
	var prev []byte
	n := 0
	tr.Ascend(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %q", k)
		}
		prev = k
		n++
		return true
	})
	if n != 5000 {
		t.Errorf("scan saw %d keys", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(key(i), val(i))
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 250 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Errorf("deleted key %d still present (%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Errorf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete(key(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(key(i), val(i))
	}
	var got []string
	tr.AscendRange(key(10), key(15), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k00000010", "k00000011", "k00000012", "k00000013", "k00000014"}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	tr.AscendRange(nil, nil, func(k, v []byte) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
	// Empty range.
	n = 0
	tr.AscendRange(key(50), key(50), func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Errorf("empty range visited %d", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	keys := []string{"aa1", "aa2", "ab1", "b", "aa", "a"}
	for _, k := range keys {
		tr.Insert([]byte(k), []byte(k))
	}
	var got []string
	tr.AscendPrefix([]byte("aa"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"aa", "aa1", "aa2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("prefix scan = %v, want %v", got, want)
	}
}

func TestPrefixUpperBound(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0xAB, 0x00}, []byte{0xAB, 0x01}},
	}
	for _, c := range cases {
		got := prefixUpperBound(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("prefixUpperBound(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4097} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: key(rng.Intn(n * 2)), Value: val(i)}
		}
		bulk := BulkLoad(append([]Entry(nil), entries...))
		if err := bulk.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		inc := New()
		for _, e := range entries {
			inc.Insert(e.Key, e.Value)
		}
		if bulk.Len() != inc.Len() {
			t.Fatalf("n=%d: bulk Len %d, incremental %d", n, bulk.Len(), inc.Len())
		}
		var bk, ik []string
		bulk.Ascend(func(k, v []byte) bool { bk = append(bk, string(k)+"="+string(v)); return true })
		inc.Ascend(func(k, v []byte) bool { ik = append(ik, string(k)+"="+string(v)); return true })
		if fmt.Sprint(bk) != fmt.Sprint(ik) {
			t.Fatalf("n=%d: bulk and incremental trees differ", n)
		}
	}
}

func TestParallelBulkLoadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: key(rng.Intn(20000)), Value: val(i)}
	}
	serial := BulkLoad(append([]Entry(nil), entries...))
	for _, w := range []int{1, 2, 4, 8} {
		par := ParallelBulkLoad(append([]Entry(nil), entries...), w)
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("workers=%d: Len %d vs %d", w, par.Len(), serial.Len())
		}
		var sk, pk []string
		serial.Ascend(func(k, v []byte) bool { sk = append(sk, string(k)); return true })
		par.Ascend(func(k, v []byte) bool { pk = append(pk, string(k)); return true })
		if fmt.Sprint(sk) != fmt.Sprint(pk) {
			t.Fatalf("workers=%d: key sets differ", w)
		}
	}
}

func TestBulkLoadDuplicatesKeepLast(t *testing.T) {
	entries := []Entry{
		{Key: []byte("x"), Value: []byte("1")},
		{Key: []byte("x"), Value: []byte("2")},
	}
	tr := BulkLoad(entries)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get([]byte("x"))
	if string(v) != "2" {
		t.Errorf("kept %q, want last value", v)
	}
}

func TestConcurrentReaders(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(key(i), val(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				k := rng.Intn(10000)
				if v, err := tr.Get(key(k)); err != nil || !bytes.Equal(v, val(k)) {
					t.Errorf("Get(%d) = %q, %v", k, v, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestStats(t *testing.T) {
	tr := New()
	s := tr.Stats()
	if s.Entries != 0 || s.Height != 1 || s.Leaves != 1 {
		t.Errorf("empty stats = %+v", s)
	}
	for i := 0; i < 10000; i++ {
		tr.Insert(key(i), val(i))
	}
	s = tr.Stats()
	if s.Entries != 10000 || s.Height < 2 || s.Leaves < 10000/(degree+1) {
		t.Errorf("stats = %+v", s)
	}
}

// Property: scanning any tree built from random inserts yields exactly
// the sorted set of distinct inserted keys.
func TestScanIsSortedSetProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		tr := New()
		set := map[string]bool{}
		for _, k := range raw {
			if len(k) == 0 {
				continue
			}
			tr.Insert(k, k)
			set[string(k)] = true
		}
		var want []string
		for k := range set {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		tr.Ascend(func(k, v []byte) bool { got = append(got, string(k)); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a range scan agrees with filtering a full scan.
func TestRangeScanAgreesWithFilterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New()
	var keys [][]byte
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("%06d", rng.Intn(100000)))
		tr.Insert(k, k)
		keys = append(keys, k)
	}
	for trial := 0; trial < 50; trial++ {
		lo := []byte(fmt.Sprintf("%06d", rng.Intn(100000)))
		hi := []byte(fmt.Sprintf("%06d", rng.Intn(100000)))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var fromRange []string
		tr.AscendRange(lo, hi, func(k, v []byte) bool {
			fromRange = append(fromRange, string(k))
			return true
		})
		var fromFilter []string
		tr.Ascend(func(k, v []byte) bool {
			if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
				fromFilter = append(fromFilter, string(k))
			}
			return true
		})
		if fmt.Sprint(fromRange) != fmt.Sprint(fromFilter) {
			t.Fatalf("range [%s,%s): %v vs %v", lo, hi, fromRange, fromFilter)
		}
	}
}
