package idxbuild

import (
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
)

func TestCreateQuadtreeSimMatchesReal(t *testing.T) {
	ds := datagen.BlockGroups(200, 401)
	tab := loadTable(t, ds)
	grid, err := quadtree.NewGrid(ds.Bounds, 7)
	if err != nil {
		t.Fatal(err)
	}
	real, _, err := CreateQuadtree(tab, "geom", grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		sim, stats, err := CreateQuadtreeSim(tab, "geom", grid, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if sim.EntryCount() != real.EntryCount() {
			t.Fatalf("workers=%d: %d entries, real build %d", w, sim.EntryCount(), real.EntryCount())
		}
		if stats.Workers != w || stats.Rows != tab.Len() || stats.Total <= 0 {
			t.Errorf("workers=%d: stats %+v", w, stats)
		}
		if w > 1 && len(stats.InstanceTimes) != w {
			t.Errorf("workers=%d: %d instance times", w, len(stats.InstanceTimes))
		}
		// The makespan is the max instance time.
		var max int64
		for _, d := range stats.InstanceTimes {
			if int64(d) > max {
				max = int64(d)
			}
		}
		if int64(stats.LoadPhase) != max {
			t.Errorf("workers=%d: load phase %v != max instance %v", w, stats.LoadPhase, max)
		}
		// Same candidates for a probe window.
		win := geom.MBR{MinX: 100, MinY: 100, MaxX: 300, MaxY: 300}
		a := sim.WindowCandidates(win)
		b := real.WindowCandidates(win)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d candidates, real %d", w, len(a), len(b))
		}
	}
}

func TestCreateRtreeSimMatchesReal(t *testing.T) {
	ds := datagen.BlockGroups(2000, 409)
	tab := loadTable(t, ds)
	real, _, err := CreateRtree(tab, "geom", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		sim, stats, err := CreateRtreeSim(tab, "geom", 0, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := sim.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if sim.Len() != real.Len() {
			t.Fatalf("workers=%d: %d items, real %d", w, sim.Len(), real.Len())
		}
		if stats.Total <= 0 || stats.Rows != tab.Len() {
			t.Errorf("workers=%d: stats %+v", w, stats)
		}
		q := geom.MBR{MinX: 200, MinY: 200, MaxX: 500, MaxY: 500}
		count := func(tr *rtree.Tree) int {
			n := 0
			tr.Search(q, func(rtree.Item) bool { n++; return true })
			return n
		}
		if count(sim) != count(real) {
			t.Fatalf("workers=%d: query results differ", w)
		}
	}
}

func TestCreateRtreeSimBadColumn(t *testing.T) {
	tab := loadTable(t, datagen.Stars(10, 419))
	if _, _, err := CreateRtreeSim(tab, "nope", 0, 2); err == nil {
		t.Errorf("bad column: want error")
	}
	grid, _ := quadtree.NewGrid(datagen.World, 5)
	if _, _, err := CreateQuadtreeSim(tab, "nope", grid, 2); err == nil {
		t.Errorf("bad column quadtree sim: want error")
	}
}

func TestCreateRtreeWithInterior(t *testing.T) {
	ds := datagen.Counties(36, 421)
	tab := loadTable(t, ds)
	tree, stats, err := CreateRtreeOpts(tab, "geom", RtreeOptions{Workers: 2, InteriorEffort: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != tab.Len() {
		t.Fatalf("stats %+v", stats)
	}
	// Every leaf item of fat county polygons should carry a non-trivial
	// interior approximation contained in its MBR.
	withInterior := 0
	for _, it := range tree.Items() {
		if it.Interior.Area() > 0 {
			withInterior++
			if !it.MBR.Contains(it.Interior) {
				t.Fatalf("interior %v escapes MBR %v", it.Interior, it.MBR)
			}
		}
	}
	if withInterior < tab.Len()*3/4 {
		t.Errorf("only %d of %d items have interiors", withInterior, tab.Len())
	}
	// Without the option, none do.
	plain, _, err := CreateRtree(tab, "geom", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range plain.Items() {
		if it.Interior.Area() > 0 {
			t.Fatalf("plain build produced an interior approximation")
		}
	}
}

func TestParallelBulkLoadSimSmallInput(t *testing.T) {
	// Tiny inputs take the sequential path and still report a cluster
	// time.
	items := []rtree.Item{
		{MBR: geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, ID: storage.RowID{Page: 1, Slot: 0}},
	}
	tree, cluster, merge := rtree.ParallelBulkLoadSim(items, 8, 4)
	if tree.Len() != 1 || merge != 0 || cluster < 0 {
		t.Fatalf("tiny sim build: len=%d cluster=%v merge=%v", tree.Len(), cluster, merge)
	}
	empty, _, _ := rtree.ParallelBulkLoadSim(nil, 8, 4)
	if empty.Len() != 0 {
		t.Fatalf("empty sim build has %d items", empty.Len())
	}
}
