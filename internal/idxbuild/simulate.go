package idxbuild

import (
	"time"

	"spatialtf/internal/btree"
	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
)

// This file provides a deterministic multi-processor simulator for
// parallel index creation, mirroring sjoin's simulator: each
// table-function instance's work runs serially and is timed in
// isolation; the simulated parallel load-phase time is the makespan
// (max over instances). It exists because the paper's Table 3 ran on a
// 4-CPU machine, and single-core hosts cannot demonstrate the speedup
// with goroutine wall-clock. Results (index contents) are identical to
// the goroutine-parallel build.

// SimStats extends Stats with the per-instance load times.
type SimStats struct {
	Stats
	InstanceTimes []time.Duration
}

// CreateQuadtreeSim builds the quadtree like CreateQuadtree but under
// the multi-processor simulator.
func CreateQuadtreeSim(tab *storage.Table, column string, grid quadtree.Grid, workers int) (*quadtree.Index, SimStats, error) {
	if workers < 1 {
		workers = 1
	}
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, SimStats{}, err
	}
	var (
		entries  []btree.Entry
		makespan time.Duration
		times    []time.Duration
	)
	for _, r := range tab.PageRanges(workers) {
		cur := storage.NewRangeCursor(tab, r[0], r[1])
		fn := &tessellateFn{input: cur, geomCol: col, grid: grid}
		t0 := time.Now()
		if err := fn.Start(); err != nil {
			return nil, SimStats{}, err
		}
		for {
			rows, err := fn.Fetch(tablefunc.DefaultBatch)
			if err != nil {
				fn.Close()
				return nil, SimStats{}, err
			}
			if len(rows) == 0 {
				break
			}
			for _, row := range rows {
				key, err := tileRowKey(row)
				if err != nil {
					fn.Close()
					return nil, SimStats{}, err
				}
				entries = append(entries, btree.Entry{Key: key})
			}
		}
		fn.Close()
		d := time.Since(t0)
		times = append(times, d)
		if d > makespan {
			makespan = d
		}
	}
	// The B-tree build phase is a few percent of the total, so it is
	// charged as measured (its internal chunk sort does parallelise for
	// real on multi-core hosts).
	t0 := time.Now()
	idx := quadtree.NewIndexFromEntries(grid, entries, workers)
	buildTime := time.Since(t0)
	return idx, SimStats{
		Stats: Stats{
			Rows:       tab.Len(),
			Entries:    idx.EntryCount(),
			Workers:    workers,
			LoadPhase:  makespan,
			BuildPhase: buildTime,
			Total:      makespan + buildTime,
		},
		InstanceTimes: times,
	}, nil
}

// CreateRtreeSim builds the R-tree like CreateRtree but under the
// multi-processor simulator: the MBR-load phase is simulated per
// partition, and the subtree-clustering phase is simulated by timing
// each partition's leaf packing serially (makespan) plus the measured
// merge.
func CreateRtreeSim(tab *storage.Table, column string, fanout, workers int) (*rtree.Tree, SimStats, error) {
	if workers < 1 {
		workers = 1
	}
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, SimStats{}, err
	}
	var (
		items    []rtree.Item
		makespan time.Duration
		times    []time.Duration
	)
	for _, r := range tab.PageRanges(workers) {
		t0 := time.Now()
		var ferr error
		terr := tab.ScanRange(r[0], r[1], func(id storage.RowID, row storage.Row) bool {
			m := geom.MBROf(row[col].G)
			if !m.Valid() {
				ferr = errInvalidMBR(id)
				return false
			}
			items = append(items, rtree.Item{MBR: m, ID: id})
			return true
		})
		if terr != nil {
			return nil, SimStats{}, terr
		}
		if ferr != nil {
			return nil, SimStats{}, ferr
		}
		d := time.Since(t0)
		times = append(times, d)
		if d > makespan {
			makespan = d
		}
	}
	// Clustering phase: the per-partition subtree packing is simulated
	// (max over partitions) and the inherently serial upper-level merge
	// is charged in full.
	tree, clusterMakespan, mergeTime := rtree.ParallelBulkLoadSim(items, fanout, workers)
	buildSim := clusterMakespan + mergeTime
	return tree, SimStats{
		Stats: Stats{
			Rows:       tab.Len(),
			Entries:    len(items),
			Workers:    workers,
			LoadPhase:  makespan,
			BuildPhase: buildSim,
			Total:      makespan + buildSim,
		},
		InstanceTimes: times,
	}, nil
}

func errInvalidMBR(id storage.RowID) error {
	return &invalidMBRError{id: id}
}

type invalidMBRError struct{ id storage.RowID }

func (e *invalidMBRError) Error() string {
	return "idxbuild: row " + e.id.String() + " has invalid MBR"
}
