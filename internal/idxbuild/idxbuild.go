// Package idxbuild implements the paper's §5: parallel spatial index
// creation via parallel table functions.
//
// Quadtree creation follows Figure 2 exactly:
//
//	geometry table → table-fn partitioning → N tessellators → index table
//
// The geometry table's scan cursor is partitioned across N instances of
// a tessellation table function; each instance tessellates its
// geometries into tiles and emits (tile code, rowid) index rows; the
// B-tree over the codes is then built with the parallel clause
// (btree.ParallelBulkLoad).
//
// R-tree creation uses parallel table functions "(1) to load the
// geometry data and compute minimum bounding rectangles, and (2) to
// cluster subtrees in parallel" — an MBR-loader table function fans out
// over the table partition cursors, and the collected (mbr, rowid) items
// go through the parallel subtree build of rtree.ParallelBulkLoad.
package idxbuild

import (
	"encoding/binary"
	"fmt"
	"time"

	"spatialtf/internal/btree"
	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
	"spatialtf/internal/tablefunc"
)

// Stats reports what a build did, phase by phase; the Table 3 bench
// prints the totals.
type Stats struct {
	Rows       int           // geometry rows read
	Entries    int           // index entries produced (tiles or MBRs)
	Workers    int           // degree of parallelism used
	LoadPhase  time.Duration // tessellation / MBR-computation phase
	BuildPhase time.Duration // B-tree build / subtree clustering+merge
	Total      time.Duration
}

// --- Quadtree creation (Figure 2) ---

// tessellateFn is the tessellation table function: it consumes geometry
// rows from its input partition cursor and produces index rows
// (tile code, rowid). One instance runs per partition.
type tessellateFn struct {
	input   storage.Cursor
	geomCol int
	grid    quadtree.Grid

	// pending holds tile rows produced by the current geometry but not
	// yet fetched — the pipelining state between fetch calls.
	pending []storage.Row
}

func (f *tessellateFn) Start() error { return nil }

func (f *tessellateFn) Fetch(max int) ([]storage.Row, error) {
	out := make([]storage.Row, 0, max)
	for len(out) < max {
		if len(f.pending) > 0 {
			n := max - len(out)
			if n > len(f.pending) {
				n = len(f.pending)
			}
			out = append(out, f.pending[:n]...)
			f.pending = f.pending[n:]
			continue
		}
		id, row, ok, err := f.input.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tiles, err := quadtree.Tessellate(f.grid, row[f.geomCol].G)
		if err != nil {
			return nil, fmt.Errorf("idxbuild: tessellate row %v: %w", id, err)
		}
		for _, t := range tiles {
			f.pending = append(f.pending, tileRow(t, id))
		}
	}
	return out, nil
}

func (f *tessellateFn) Close() error { return f.input.Close() }

// tileRow encodes one quadtree index-table row: the tile code and the
// base-table rowid.
func tileRow(t quadtree.Tile, id storage.RowID) storage.Row {
	return storage.Row{storage.Int(int64(t)), storage.Bytes(id.AppendTo(nil))}
}

// tileRowKey turns an index-table row back into a B-tree key.
func tileRowKey(row storage.Row) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(row[0].I))
	rid := row[1].B
	if len(rid) != 6 {
		return nil, fmt.Errorf("idxbuild: bad rowid payload length %d", len(rid))
	}
	return append(buf[:], rid...), nil
}

// CreateQuadtree builds a linear quadtree index on tab's geometry column
// with the given degree of parallelism, returning the index and build
// statistics.
func CreateQuadtree(tab *storage.Table, column string, grid quadtree.Grid, workers int) (*quadtree.Index, Stats, error) {
	if workers < 1 {
		workers = 1
	}
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()

	// Step 1 (parallel): tessellate geometries into tiles — the table
	// function with a partitioned input cursor.
	parts := tablefunc.PartitionTable(tab, workers)
	factory := func(instance int, input storage.Cursor) (tablefunc.TableFunction, error) {
		return &tessellateFn{input: input, geomCol: col, grid: grid}, nil
	}
	out := tablefunc.Parallel(parts, factory, 0)
	var entries []btree.Entry
	for {
		_, row, ok, err := out.Next()
		if err != nil {
			out.Close()
			return nil, Stats{}, err
		}
		if !ok {
			break
		}
		key, err := tileRowKey(row)
		if err != nil {
			out.Close()
			return nil, Stats{}, err
		}
		entries = append(entries, btree.Entry{Key: key})
	}
	out.Close()
	loadDone := time.Now()

	// Step 2 (parallel): build the B-tree on the tile codes.
	idx := quadtree.NewIndexFromEntries(grid, entries, workers)
	end := time.Now()

	return idx, Stats{
		Rows:       tab.Len(),
		Entries:    len(entries),
		Workers:    workers,
		LoadPhase:  loadDone.Sub(start),
		BuildPhase: end.Sub(loadDone),
		Total:      end.Sub(start),
	}, nil
}

// --- R-tree creation ---

// mbrLoadFn is the MBR-computation table function: it consumes geometry
// rows and emits (mbr, interior, rowid) rows. Interior approximations
// (Kothuri & Ravada, SSTD 2001) are computed when interiorEffort > 0;
// they cost extra build time but let joins fast-accept candidates.
type mbrLoadFn struct {
	input          storage.Cursor
	geomCol        int
	interiorEffort int
}

func (f *mbrLoadFn) Start() error { return nil }

func (f *mbrLoadFn) Fetch(max int) ([]storage.Row, error) {
	out := make([]storage.Row, 0, max)
	for len(out) < max {
		id, row, ok, err := f.input.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		g := row[f.geomCol].G
		m := geom.MBROf(g)
		if !m.Valid() {
			return nil, fmt.Errorf("idxbuild: row %v has invalid MBR", id)
		}
		interior := geom.MBR{}
		if f.interiorEffort > 0 {
			if r := geom.InteriorRect(g, f.interiorEffort); r.Valid() && r.Area() > 0 {
				interior = r
			}
		}
		out = append(out, mbrRow(m, interior, id))
	}
	return out, nil
}

func (f *mbrLoadFn) Close() error { return f.input.Close() }

// mbrRow encodes one (mbr, interior, rowid) row. An absent interior is
// stored as four zeros (zero area = none).
func mbrRow(m, interior geom.MBR, id storage.RowID) storage.Row {
	return storage.Row{
		storage.Float(m.MinX), storage.Float(m.MinY),
		storage.Float(m.MaxX), storage.Float(m.MaxY),
		storage.Float(interior.MinX), storage.Float(interior.MinY),
		storage.Float(interior.MaxX), storage.Float(interior.MaxY),
		storage.Bytes(id.AppendTo(nil)),
	}
}

// mbrRowItem decodes an (mbr, interior, rowid) row into an R-tree item.
func mbrRowItem(row storage.Row) (rtree.Item, error) {
	id, err := storage.RowIDFromBytes(row[8].B)
	if err != nil {
		return rtree.Item{}, err
	}
	return rtree.Item{
		MBR:      geom.MBR{MinX: row[0].F, MinY: row[1].F, MaxX: row[2].F, MaxY: row[3].F},
		Interior: geom.MBR{MinX: row[4].F, MinY: row[5].F, MaxX: row[6].F, MaxY: row[7].F},
		ID:       id,
	}, nil
}

// RtreeOptions tunes CreateRtreeOpts.
type RtreeOptions struct {
	// Fanout is the node capacity (0 = default).
	Fanout int
	// Workers is the degree of parallelism.
	Workers int
	// InteriorEffort, when positive, computes interior approximations
	// for each geometry at the given search granularity (see
	// geom.InteriorRect).
	InteriorEffort int
}

// CreateRtree builds an R-tree index on tab's geometry column with the
// given node fanout (0 = default) and degree of parallelism.
func CreateRtree(tab *storage.Table, column string, fanout, workers int) (*rtree.Tree, Stats, error) {
	return CreateRtreeOpts(tab, column, RtreeOptions{Fanout: fanout, Workers: workers})
}

// CreateRtreeOpts builds an R-tree index with full options.
func CreateRtreeOpts(tab *storage.Table, column string, opt RtreeOptions) (*rtree.Tree, Stats, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	col, err := tab.ColumnIndex(column)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()

	// Step 1 (parallel): load geometries and compute MBRs (plus
	// interior approximations when requested).
	parts := tablefunc.PartitionTable(tab, workers)
	factory := func(instance int, input storage.Cursor) (tablefunc.TableFunction, error) {
		return &mbrLoadFn{input: input, geomCol: col, interiorEffort: opt.InteriorEffort}, nil
	}
	out := tablefunc.Parallel(parts, factory, 0)
	var items []rtree.Item
	for {
		_, row, ok, err := out.Next()
		if err != nil {
			out.Close()
			return nil, Stats{}, err
		}
		if !ok {
			break
		}
		it, err := mbrRowItem(row)
		if err != nil {
			out.Close()
			return nil, Stats{}, err
		}
		items = append(items, it)
	}
	out.Close()
	loadDone := time.Now()

	// Step 2 (parallel): cluster subtrees in parallel and merge.
	tree := rtree.ParallelBulkLoad(items, opt.Fanout, workers)
	end := time.Now()

	return tree, Stats{
		Rows:       tab.Len(),
		Entries:    len(items),
		Workers:    workers,
		LoadPhase:  loadDone.Sub(start),
		BuildPhase: end.Sub(loadDone),
		Total:      end.Sub(start),
	}, nil
}
