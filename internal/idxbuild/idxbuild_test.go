package idxbuild

import (
	"testing"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/storage"
)

func loadTable(t testing.TB, ds datagen.Dataset) *storage.Table {
	t.Helper()
	tab, _, err := datagen.LoadTable(ds.Name, ds)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCreateRtreeAllWorkerCountsEquivalent(t *testing.T) {
	ds := datagen.BlockGroups(800, 47)
	tab := loadTable(t, ds)
	var baseline map[storage.RowID]bool
	for _, w := range []int{1, 2, 4} {
		tree, stats, err := CreateRtree(tab, "geom", 0, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if tree.Len() != tab.Len() {
			t.Fatalf("workers=%d: indexed %d of %d rows", w, tree.Len(), tab.Len())
		}
		if stats.Rows != tab.Len() || stats.Entries != tab.Len() || stats.Workers != w {
			t.Errorf("workers=%d: stats %+v", w, stats)
		}
		if stats.Total <= 0 {
			t.Errorf("workers=%d: zero total time", w)
		}
		// Same query answers at every parallelism.
		q := geom.MBR{MinX: 200, MinY: 200, MaxX: 400, MaxY: 400}
		got := map[storage.RowID]bool{}
		tree.Search(q, func(it rtree.Item) bool {
			got[it.ID] = true
			return true
		})
		if baseline == nil {
			baseline = got
		} else if len(got) != len(baseline) {
			t.Fatalf("workers=%d: %d hits, baseline %d", w, len(got), len(baseline))
		}
	}
}

func TestCreateQuadtreeAllWorkerCountsEquivalent(t *testing.T) {
	ds := datagen.BlockGroups(300, 53)
	tab := loadTable(t, ds)
	grid, err := quadtree.NewGrid(ds.Bounds, 7)
	if err != nil {
		t.Fatal(err)
	}
	var entryCount int
	var baseline map[storage.RowID]bool
	for _, w := range []int{1, 2, 4} {
		idx, stats, err := CreateQuadtree(tab, "geom", grid, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if stats.Rows != tab.Len() || stats.Workers != w {
			t.Errorf("workers=%d: stats %+v", w, stats)
		}
		if idx.EntryCount() == 0 {
			t.Fatalf("workers=%d: empty index", w)
		}
		if entryCount == 0 {
			entryCount = idx.EntryCount()
		} else if idx.EntryCount() != entryCount {
			t.Fatalf("workers=%d: %d entries, baseline %d", w, idx.EntryCount(), entryCount)
		}
		got := map[storage.RowID]bool{}
		for _, id := range idx.WindowCandidates(geom.MBR{MinX: 100, MinY: 100, MaxX: 500, MaxY: 500}) {
			got[id] = true
		}
		if baseline == nil {
			baseline = got
		} else {
			if len(got) != len(baseline) {
				t.Fatalf("workers=%d: %d candidates, baseline %d", w, len(got), len(baseline))
			}
			for id := range got {
				if !baseline[id] {
					t.Fatalf("workers=%d: candidate sets differ at %v", w, id)
				}
			}
		}
	}
}

func TestCreateErrorsOnBadColumn(t *testing.T) {
	tab := loadTable(t, datagen.Stars(10, 59))
	if _, _, err := CreateRtree(tab, "nope", 0, 1); err == nil {
		t.Errorf("bad column rtree: want error")
	}
	grid, _ := quadtree.NewGrid(datagen.World, 5)
	if _, _, err := CreateQuadtree(tab, "nope", grid, 1); err == nil {
		t.Errorf("bad column quadtree: want error")
	}
}

func TestCreateQuadtreeGeometryOutsideGridFails(t *testing.T) {
	tab := loadTable(t, datagen.Stars(20, 61))
	tiny, err := quadtree.NewGrid(geom.MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CreateQuadtree(tab, "geom", tiny, 2); err == nil {
		t.Errorf("out-of-grid geometries: want error")
	}
}

func TestQuadtreeTessellationDominatesLoadPhase(t *testing.T) {
	// The paper's Table 3 premise: for complex polygons, quadtree
	// creation (tessellation) costs far more than R-tree creation
	// (MBR computation).
	ds := datagen.BlockGroups(300, 67)
	tab := loadTable(t, ds)
	grid, _ := quadtree.NewGrid(ds.Bounds, 8)
	_, qs, err := CreateQuadtree(tab, "geom", grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := CreateRtree(tab, "geom", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Total < rs.Total {
		t.Errorf("quadtree build (%v) faster than rtree build (%v); tessellation should dominate", qs.Total, rs.Total)
	}
}
