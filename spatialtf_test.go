package spatialtf

import (
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	db := Open()
	cities, err := db.CreateSpatialTable("cities")
	if err != nil {
		t.Fatal(err)
	}
	idA, err := cities.Add("alpha", MustRect(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cities.Add("beta", MustRect(20, 20, 30, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("cities_idx", "cities", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	hits, err := db.Relate("cities", "cities_idx", MustRect(5, 5, 8, 8), "inside")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		// The query window is INSIDE alpha; Relate(tabGeom, q, inside)
		// asks whether the table geometry is inside the window, which it
		// is not.
		t.Fatalf("inside hits = %v", hits)
	}
	hits, err = db.Relate("cities", "cities_idx", MustRect(5, 5, 8, 8), "contains")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != idA {
		t.Fatalf("contains hits = %v, want [%v]", hits, idA)
	}
	hits, err = db.WithinDistance("cities", "cities_idx", NewPoint(12, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != idA {
		t.Fatalf("within-distance hits = %v", hits)
	}
	// Geometry accessor.
	g, err := cities.Geometry(idA, "geom")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(MustRect(0, 0, 10, 10)) {
		t.Fatalf("Geometry returned %v", g)
	}
}

func TestFacadeErrors(t *testing.T) {
	db := Open()
	if _, err := db.Table("missing"); err == nil {
		t.Errorf("missing table: want error")
	}
	if _, err := db.Index("missing"); err == nil {
		t.Errorf("missing index: want error")
	}
	if _, err := db.CreateSpatialTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateSpatialTable("t"); err == nil {
		t.Errorf("duplicate table: want error")
	}
	if _, err := db.Relate("t", "noidx", MustRect(0, 0, 1, 1), "anyinteract"); err == nil {
		t.Errorf("missing index in Relate: want error")
	}
	if _, err := db.CreateIndex("i", "t", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relate("t", "i", MustRect(0, 0, 1, 1), "bogusmask"); err == nil {
		t.Errorf("bad mask: want error")
	}
	// Join across mismatched table/index pairs fails.
	if _, err := db.CreateSpatialTable("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SpatialJoin("u", "i", "t", "i", JoinOptions{}); err == nil {
		t.Errorf("index on wrong table: want error")
	}
}

func TestFacadeSpatialJoinMatchesNestedLoop(t *testing.T) {
	db := Open()
	ds := Counties(64, 101)
	if _, err := db.LoadDataset("counties", ds); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_idx", "counties", RTree, IndexOptions{Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	nl, err := db.NestedLoopJoin("counties", "counties_idx", "counties", "counties_idx", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ij, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	pcur, err := db.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", JoinOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := pcur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(nl) == 0 || len(nl) != len(ij) || len(ij) != len(pj) {
		t.Fatalf("result sizes differ: nl=%d ij=%d pj=%d", len(nl), len(ij), len(pj))
	}
	set := map[Pair]bool{}
	for _, p := range nl {
		set[p] = true
	}
	for _, p := range append(ij, pj...) {
		if !set[p] {
			t.Fatalf("pair %v not in nested-loop result", p)
		}
	}
}

func TestFacadeJoinAlgoOverride(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("c", Counties(150, 113)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("ci", "c", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := db.NestedLoopJoin("c", "ci", "c", "ci", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairs := func(ps []Pair) {
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].Less(ps[j-1]); j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
	}
	sortPairs(want)
	for _, opt := range []JoinOptions{
		{Algo: "grid"},
		{Algo: "grid", Parallel: 4},
		{Algo: "subtree", Parallel: 4},
		{Algo: "nested"},
		{Algo: "auto"},
		{Algo: "auto", Parallel: 8},
	} {
		cur, err := db.SpatialJoin("c", "ci", "c", "ci", opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		got, err := cur.Collect()
		if err != nil {
			t.Fatal(err)
		}
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d pairs, want %d", opt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%+v: pair %d = %v, want %v", opt, i, got[i], want[i])
			}
		}
	}
	if _, err := db.SpatialJoin("c", "ci", "c", "ci", JoinOptions{Algo: "bogus"}); err == nil {
		t.Errorf("bad algo accepted")
	}
}

func TestExplainJoinAlgo(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("stars", Stars(2000, 603)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("si", "stars", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	plan, err := db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{Algo: "grid", Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm: grid", "GRID-PARTITIONED parallel table function, 8 instances", "uniform tiles", "A/B/C/D"} {
		if !containsStr(plan, want) {
			t.Errorf("grid plan missing %q:\n%s", want, plan)
		}
	}
	plan, err = db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{Algo: "auto", Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(plan, "cost model:") {
		t.Errorf("auto plan missing cost-model reasoning:\n%s", plan)
	}
	plan, err = db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{Algo: "nested"})
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(plan, "NESTED LOOP") {
		t.Errorf("nested plan missing strategy:\n%s", plan)
	}
	if _, err := db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{Algo: "nope"}); err == nil {
		t.Errorf("bad algo accepted by explain")
	}
}

func TestFacadeJoinCursorStreams(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("stars", Stars(300, 103)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("si", "stars", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	cur, err := db.SpatialJoin("stars", "si", "stars", "si", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	cur.Close()
	if n < 300 {
		t.Fatalf("self-join streamed %d pairs, want >= row count", n)
	}
}

func TestFacadeQuadtreeJoin(t *testing.T) {
	db := Open()
	ds := Counties(36, 107)
	if _, err := db.LoadDataset("c", ds); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("c_rt", "c", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("c_qt", "c", Quadtree, IndexOptions{TilingLevel: 6, Bounds: World}); err != nil {
		t.Fatal(err)
	}
	rt, err := db.NestedLoopJoin("c", "c_rt", "c", "c_rt", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qt, err := db.QuadtreeJoin("c", "c_qt", "c", "c_qt", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != len(qt) {
		t.Fatalf("rtree join %d pairs, quadtree join %d", len(rt), len(qt))
	}
	// Joining an R-tree-indexed operand with QuadtreeJoin fails cleanly.
	if _, err := db.QuadtreeJoin("c", "c_rt", "c", "c_qt", JoinOptions{}); err == nil {
		t.Errorf("quadtree join over rtree index: want error")
	}
}

func TestFacadeNearest(t *testing.T) {
	db := Open()
	cities, err := db.CreateSpatialTable("cities")
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]RowID{}
	for name, g := range map[string]Geometry{
		"near":    MustRect(10, 10, 11, 11),
		"mid":     MustRect(20, 20, 21, 21),
		"far":     MustRect(50, 50, 51, 51),
		"farther": MustRect(90, 90, 91, 91),
	} {
		id, err := cities.Add(name, g)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	if _, err := db.CreateIndex("ci", "cities", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	nbs, err := db.Nearest("cities", "ci", NewPoint(9, 9), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 {
		t.Fatalf("Nearest returned %d", len(nbs))
	}
	if nbs[0].ID != ids["near"] || nbs[1].ID != ids["mid"] || nbs[2].ID != ids["far"] {
		t.Fatalf("wrong ranking: %+v (ids %v)", nbs, ids)
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i-1].Dist > nbs[i].Dist {
			t.Fatalf("distances out of order: %+v", nbs)
		}
	}
}

func TestFacadeIndexMetadata(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("c", Counties(16, 109)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("c_rt", "c", RTree, IndexOptions{Fanout: 8}); err != nil {
		t.Fatal(err)
	}
	metas, err := db.IndexMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].IndexName != "c_rt" || metas[0].Fanout != 8 || metas[0].RowsIndexed != 16 {
		t.Fatalf("metadata = %+v", metas)
	}
}

func TestExplainJoin(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("stars", Stars(2000, 601)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("si", "stars", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	plan, err := db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPATIAL JOIN (mask=ANYINTERACT)", "SERIAL pipelined", "sorted by first rowid", "2000 items"} {
		if !containsStr(plan, want) {
			t.Errorf("serial plan missing %q:\n%s", want, plan)
		}
	}
	plan, err = db.ExplainJoin("stars", "si", "stars", "si", JoinOptions{Parallel: 4, Distance: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distance=2", "PARALLEL pipelined table function, 4 instances", "subtree-pair tasks scheduled"} {
		if !containsStr(plan, want) {
			t.Errorf("parallel plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := db.ExplainJoin("stars", "nope", "stars", "si", JoinOptions{}); err == nil {
		t.Errorf("bad index accepted")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}

func TestFacadeDMLMaintainsIndex(t *testing.T) {
	db := Open()
	tab, err := db.CreateSpatialTable("live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("live_idx", "live", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	id, err := tab.Add("row", MustRect(1, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := db.Relate("live", "live_idx", MustRect(0, 0, 3, 3), "anyinteract")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != id {
		t.Fatalf("post-insert hits = %v", hits)
	}
	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	hits, err = db.Relate("live", "live_idx", MustRect(0, 0, 3, 3), "anyinteract")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("post-delete hits = %v", hits)
	}
}
