package spatialtf

import (
	"spatialtf/internal/rtree"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/telemetry"
)

// Telemetry re-exports the registry type so embedders can build one
// without importing the internal package path.
type (
	// TelemetryRegistry is the metrics registry (telemetry.Registry).
	TelemetryRegistry = telemetry.Registry
	// Tracer mints per-query span traces (telemetry.Tracer).
	Tracer = telemetry.Tracer
)

// NewTelemetryRegistry returns an empty enabled metrics registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.New() }

// EnableTelemetry registers the database's metric set on reg: the
// shared spatial-join instruments (work counters and stage-latency
// histograms) plus scrape-time views over the decoded-geometry cache
// and the R-tree pin accounting. The views read the pre-existing
// atomics, so enabling telemetry adds no writes to those paths; the
// join instruments are fed by per-fetch delta flushes.
//
// An embedded database defaults to no telemetry (telemetry.Nop
// semantics — zero cost). Enable at most once per database; a second
// call is ignored. The R-tree pin counters are process-wide, so two
// databases enabled onto two registries would each see all pins.
func (db *DB) EnableTelemetry(reg *TelemetryRegistry) {
	if reg == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.instr != nil {
		return
	}
	db.telReg = reg
	db.instr = sjoin.NewInstruments(reg)
	cache := db.geomCache
	reg.CounterFunc("geom_cache_hits_total",
		"decoded-geometry cache hits", cache.Hits)
	reg.CounterFunc("geom_cache_misses_total",
		"decoded-geometry cache misses", cache.Misses)
	reg.GaugeFunc("geom_cache_bytes",
		"decoded geometry bytes resident in the cache",
		func() int64 { return cache.Stats().Bytes })
	reg.GaugeFunc("geom_cache_entries",
		"geometries resident in the cache",
		func() int64 { return cache.Stats().Entries })
	reg.CounterFunc("rtree_pins_total",
		"R-tree cursor pins ever taken (process-wide)",
		func() int64 { t, _ := rtree.PinStats(); return t })
	reg.GaugeFunc("rtree_pins_held",
		"R-tree cursor pins currently held (process-wide)",
		func() int64 { _, h := rtree.PinStats(); return h })
}

// Telemetry returns the registry passed to EnableTelemetry, or nil
// (the Nop registry) when telemetry is disabled.
func (db *DB) Telemetry() *TelemetryRegistry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.telReg
}

// SetTracer attaches a query tracer: every subsequent SpatialJoin
// cursor carries a per-query span trace that feeds the tracer's
// query_seconds histogram and its slow log. A nil tracer (the default)
// disables per-query tracing.
func (db *DB) SetTracer(tr *Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = tr
}

// getTracer reads the attached tracer (nil when tracing is disabled).
func (db *DB) getTracer() *telemetry.Tracer {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tracer
}
