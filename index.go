package spatialtf

import (
	"fmt"

	"spatialtf/internal/extidx"
	"spatialtf/internal/geom"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
)

// IndexOptions tunes spatial index creation — the PARAMETERS clause.
type IndexOptions struct {
	// Fanout is the R-tree node capacity (0 = default 32).
	Fanout int
	// TilingLevel is the quadtree fixed tiling level; required for
	// Quadtree indexes.
	TilingLevel int
	// Bounds is the indexed coordinate domain; required for Quadtree
	// indexes.
	Bounds MBR
	// Parallel is the degree of parallelism for index creation (the
	// paper's §5); 0 or 1 builds sequentially.
	Parallel int
	// InteriorEffort, when positive, computes interior approximations
	// for R-tree entries at index creation (and on DML maintenance).
	// Joins over such indexes may set JoinOptions.UseInteriorApprox to
	// fast-accept candidates without fetching exact geometries.
	InteriorEffort int
}

// Index is a handle on a created spatial index.
type Index struct {
	db    *DB
	name  string
	inner extidx.SpatialIndex
	meta  extidx.Metadata
}

// CreateIndex builds a spatial index of the given kind on table.geom
// column "geom"; use CreateIndexOn for a custom column. It corresponds
// to CREATE INDEX ... INDEXTYPE IS mdsys.spatial_index, optionally with
// the PARALLEL clause.
func (db *DB) CreateIndex(name, table string, kind IndexKind, opt IndexOptions) (*Index, error) {
	return db.CreateIndexOn(name, table, "geom", kind, opt)
}

// CreateIndexOn builds a spatial index on an explicit geometry column.
// On a durable database the index parameters are catalogued, so the
// index is rebuilt automatically on the next OpenDir.
func (db *DB) CreateIndexOn(name, table, column string, kind IndexKind, opt IndexOptions) (*Index, error) {
	return db.createIndexOn(name, table, column, kind, opt, true)
}

// createIndexOn is CreateIndexOn with catalog persistence optional:
// OpenDir's rebuild pass recreates catalogued indexes without rewriting
// the catalog it is reading from.
func (db *DB) createIndexOn(name, table, column string, kind IndexKind, opt IndexOptions, persist bool) (*Index, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	idx, err := db.reg.CreateIndex(name, kind, t.inner, column, extidx.Params{
		Fanout:         opt.Fanout,
		TilingLevel:    opt.TilingLevel,
		Bounds:         opt.Bounds,
		BuildWorkers:   opt.Parallel,
		InteriorEffort: opt.InteriorEffort,
	})
	if err != nil {
		return nil, err
	}
	meta, err := db.reg.Describe(name)
	if err != nil {
		return nil, err
	}
	if persist && db.store != nil {
		db.mu.Lock()
		err := db.writeCatalogLocked()
		db.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("spatialtf: persist catalog: %w", err)
		}
	}
	return &Index{db: db, name: name, inner: idx, meta: meta}, nil
}

// Index returns the handle of a previously created index.
func (db *DB) Index(name string) (*Index, error) {
	idx, err := db.reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	meta, err := db.reg.Describe(name)
	if err != nil {
		return nil, err
	}
	return &Index{db: db, name: name, inner: idx, meta: meta}, nil
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Metadata describes a created index — the row from the spatial index
// metadata table.
type Metadata = extidx.Metadata

// Meta returns the index metadata, including the table and column the
// index was created on.
func (ix *Index) Meta() Metadata { return ix.meta }

// rtree returns the backing R-tree or an error for other kinds.
func (ix *Index) rtree() (*rtree.Tree, error) {
	type treeHolder interface{ Tree() *rtree.Tree }
	if h, ok := ix.inner.(treeHolder); ok {
		return h.Tree(), nil
	}
	return nil, fmt.Errorf("spatialtf: index %q is not an R-tree", ix.name)
}

// qindex returns the backing quadtree or an error for other kinds.
func (ix *Index) qindex() (*quadtree.Index, error) {
	type qtHolder interface{ Index() *quadtree.Index }
	if h, ok := ix.inner.(qtHolder); ok {
		return h.Index(), nil
	}
	return nil, fmt.Errorf("spatialtf: index %q is not a quadtree", ix.name)
}

// IndexMetadata lists the metadata table — one row per created index.
func (db *DB) IndexMetadata() ([]Metadata, error) {
	return db.reg.MetadataRows()
}

// Relate evaluates the sdo_relate operator: rowids of rows in table
// whose geometry satisfies the mask against q, using the named index.
// Masks are the operator names of the paper ("anyinteract"/"intersect",
// "inside", "contains", "touch", "covers", "coveredby", "equal",
// "overlap").
func (db *DB) Relate(table, index string, q Geometry, mask string) ([]RowID, error) {
	m, err := geom.ParseMask(mask)
	if err != nil {
		return nil, err
	}
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	ix, err := db.Index(index)
	if err != nil {
		return nil, err
	}
	meta := ix.Meta()
	return extidx.Relate(ix.inner, t.inner, meta.ColumnName, q, m)
}

// Neighbor is one ranked nearest-neighbour result.
type Neighbor = extidx.Neighbor

// Nearest returns the k rows of table closest to q in exact geometry
// distance, ranked — the sdo_nn operator. The index must be an R-tree.
func (db *DB) Nearest(table, index string, q Geometry, k int) ([]Neighbor, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	ix, err := db.Index(index)
	if err != nil {
		return nil, err
	}
	return extidx.Nearest(ix.inner, t.inner, ix.Meta().ColumnName, q, k)
}

// WithinDistance evaluates the sdo_within_distance operator.
func (db *DB) WithinDistance(table, index string, q Geometry, d float64) ([]RowID, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	ix, err := db.Index(index)
	if err != nil {
		return nil, err
	}
	meta := ix.Meta()
	return extidx.WithinDistance(ix.inner, t.inner, meta.ColumnName, q, d)
}
