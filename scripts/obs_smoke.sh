#!/bin/sh
# Observability smoke test: boot spatialserverd with a metrics listener,
# run one spatial join over the wire via spatialsql, scrape /metrics,
# assert the core series moved, and check the daemon shuts down cleanly
# on SIGTERM. Dependency-free: POSIX sh + curl (grep for assertions).
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
ssd_pid=""
cleanup() {
	[ -n "$ssd_pid" ] && kill "$ssd_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/spatialserverd" ./cmd/spatialserverd
go build -o "$tmp/spatialsql" ./cmd/spatialsql

addr="127.0.0.1:7878"
maddr="127.0.0.1:9188"
"$tmp/spatialserverd" -addr "$addr" -metrics-addr "$maddr" \
	-load counties:200:1 -load stars:600:2 >"$tmp/ssd.log" 2>&1 &
ssd_pid=$!

# Wait for the metrics endpoint to come up (the daemon logs before the
# TCP listeners are ready).
i=0
until curl -fsS "http://$maddr/metrics" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "obs-smoke: metrics endpoint never came up" >&2
		cat "$tmp/ssd.log" >&2
		exit 1
	fi
	sleep 0.1
done

# One join over the wire so the server and join instruments move.
printf "SELECT count(*) FROM TABLE(spatial_join('counties','geom','stars','geom','anyinteract', 2));\n\\\\q\n" |
	"$tmp/spatialsql" -connect "$addr" >"$tmp/sql.out" 2>&1
grep -q '(1 rows)' "$tmp/sql.out" || {
	echo "obs-smoke: join query failed:" >&2
	cat "$tmp/sql.out" >&2
	exit 1
}

scrape="$tmp/metrics.txt"
curl -fsS "http://$maddr/metrics" >"$scrape"

# Core series must be present with live values: one query served, join
# results produced, and the scrape must carry histograms with samples.
for pat in \
	'^server_queries_total 1$' \
	'^server_conns_accepted_total 1$' \
	'^join_results_total [1-9]' \
	'^join_node_pairs_total [1-9]' \
	'^geom_cache_misses_total [1-9]' \
	'^join_secondary_filter_seconds_count [1-9]' \
	'^# TYPE server_fetch_seconds histogram$'; do
	grep -q "$pat" "$scrape" || {
		echo "obs-smoke: /metrics missing $pat" >&2
		cat "$scrape" >&2
		exit 1
	}
done

# pprof must answer on the same mux.
curl -fsS "http://$maddr/debug/pprof/cmdline" >/dev/null || {
	echo "obs-smoke: pprof endpoint not serving" >&2
	exit 1
}

# Clean shutdown: SIGTERM must drain and exit within the wait below,
# leaving the shutdown log line behind.
kill "$ssd_pid"
wait "$ssd_pid" 2>/dev/null || true
ssd_pid=""
grep -q 'served 1 queries' "$tmp/ssd.log" || {
	echo "obs-smoke: daemon did not log its final stats line:" >&2
	cat "$tmp/ssd.log" >&2
	exit 1
}

echo "obs-smoke: ok (query served, metrics scraped, pprof up, clean shutdown)"
