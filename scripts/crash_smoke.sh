#!/bin/sh
# Crash-recovery smoke test: boot spatialserverd on a durable -data-dir,
# load datasets and run a join over the wire, SIGKILL the daemon (no
# drain, no checkpoint), reboot on the same directory, and require the
# recovered database to answer the same counts and the same join —
# proving WAL redo recovery end to end, not just in unit tests.
# Dependency-free: POSIX sh.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
ssd_pid=""
cleanup() {
	[ -n "$ssd_pid" ] && kill -9 "$ssd_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/spatialserverd" ./cmd/spatialserverd
go build -o "$tmp/spatialsql" ./cmd/spatialsql

addr="127.0.0.1:7879"
datadir="$tmp/data"

boot() {
	"$tmp/spatialserverd" -addr "$addr" -data-dir "$datadir" -wal-sync always \
		-load counties:300:1 -load stars:900:2 >>"$tmp/ssd.log" 2>&1 &
	ssd_pid=$!
	i=0
	until printf '\\q\n' | "$tmp/spatialsql" -connect "$addr" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "crash-smoke: daemon never came up" >&2
			cat "$tmp/ssd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# query runs one statement and prints the result rows (the varying
# "elapsed:" line is stripped so outputs compare byte-for-byte).
query() {
	printf '%s\n\\q\n' "$1" | "$tmp/spatialsql" -connect "$addr" | grep -v '^elapsed:'
}

boot

# Baseline: row counts and a join answer from the freshly loaded store.
query "SELECT count(*) FROM counties;" >"$tmp/count1.out"
query "SELECT count(*) FROM stars;" >"$tmp/count2.out"
query "SELECT count(*) FROM TABLE(spatial_join('counties','geom','stars','geom','anyinteract', 2));" >"$tmp/join1.out"
grep -q '(1 rows)' "$tmp/join1.out" || {
	echo "crash-smoke: baseline join failed:" >&2
	cat "$tmp/join1.out" >&2
	exit 1
}

# A write after load, so recovery must replay WAL past the load batch.
query "INSERT INTO counties VALUES (100000, 'smoke', 'POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))');" >"$tmp/ins.out"
query "SELECT count(*) FROM counties;" >"$tmp/count1b.out"

# SIGKILL: no drain, no checkpoint, no snapshot. Recovery has only the
# page file and the WAL.
kill -9 "$ssd_pid"
wait "$ssd_pid" 2>/dev/null || true
ssd_pid=""

boot
grep -q 'already holds' "$tmp/ssd.log" || {
	echo "crash-smoke: reboot did not recover tables (reloaded instead):" >&2
	cat "$tmp/ssd.log" >&2
	exit 1
}

query "SELECT count(*) FROM counties;" >"$tmp/count1r.out"
query "SELECT count(*) FROM stars;" >"$tmp/count2r.out"
query "SELECT count(*) FROM TABLE(spatial_join('counties','geom','stars','geom','anyinteract', 2));" >"$tmp/join2.out"

cmp -s "$tmp/count1b.out" "$tmp/count1r.out" || {
	echo "crash-smoke: counties count changed across crash:" >&2
	diff "$tmp/count1b.out" "$tmp/count1r.out" >&2 || true
	exit 1
}
cmp -s "$tmp/count2.out" "$tmp/count2r.out" || {
	echo "crash-smoke: stars count changed across crash:" >&2
	diff "$tmp/count2.out" "$tmp/count2r.out" >&2 || true
	exit 1
}
cmp -s "$tmp/join1.out" "$tmp/join2.out" || {
	echo "crash-smoke: join answer changed across crash:" >&2
	diff "$tmp/join1.out" "$tmp/join2.out" >&2 || true
	exit 1
}

kill "$ssd_pid"
wait "$ssd_pid" 2>/dev/null || true
ssd_pid=""
grep -q 'data directory checkpointed' "$tmp/ssd.log" || {
	echo "crash-smoke: clean shutdown did not checkpoint:" >&2
	cat "$tmp/ssd.log" >&2
	exit 1
}

echo "crash-smoke: ok (SIGKILL survived, counts and join identical after WAL recovery)"
