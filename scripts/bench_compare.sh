#!/bin/sh
# Compares two benchmark recordings made by bench_record.sh (NDJSON of
# `go test -json` events) and prints per-benchmark ns/op and allocs/op
# deltas:
#
#   scripts/bench_compare.sh BENCH_pr8.json BENCH_pr9.json
#
# Benchmarks are keyed by the event's Test field, which carries the full
# sub-benchmark name even when the human-readable output line is split
# across events. Benchmarks present in only one file are reported with
# n/a on the missing side. Dependency-free: POSIX sh + awk.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi

awk -v old="$1" '
# getfield extracts a string field from one NDJSON event line.
function getfield(line, name,    s) {
	if (!match(line, "\"" name "\":\"")) return ""
	s = substr(line, RSTART + RLENGTH)
	sub(/".*/, "", s)
	return s
}
# metric pulls the value in front of unit from a benchmark output line
# (tabs arrive as literal \t escapes inside the JSON string).
function metric(out, unit,    n, parts, i, a) {
	n = split(out, parts, /\\t/)
	for (i = 1; i <= n; i++)
		if (index(parts[i], unit) > 0) {
			split(parts[i], a, " ")
			return a[1]
		}
	return ""
}
function pct(o, n) {
	if (o == "" || n == "" || o + 0 == 0) return "    n/a"
	return sprintf("%+6.1f%%", (n - o) * 100.0 / o)
}
function col(v) { return v == "" ? "n/a" : v }
{
	test = getfield($0, "Test")
	out = getfield($0, "Output")
	if (test == "" || index(out, "ns/op") == 0) next
	ns = metric(out, "ns/op")
	al = metric(out, "allocs/op")
	isold = (FILENAME == old)
	if (isold) {
		ons[test] = ns; oal[test] = al
	} else {
		nns[test] = ns; nal[test] = al
	}
	if (!(test in seen)) { seen[test] = 1; order[++ntests] = test }
}
END {
	printf "%-44s %14s %14s %8s %12s %12s %8s\n", \
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
	for (i = 1; i <= ntests; i++) {
		t = order[i]
		printf "%-44s %14s %14s %s %12s %12s %s\n", t, \
			col(ons[t]), col(nns[t]), pct(ons[t], nns[t]), \
			col(oal[t]), col(nal[t]), pct(oal[t], nal[t])
	}
}
' "$1" "$2"
