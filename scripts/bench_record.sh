#!/bin/sh
# Runs the full benchmark sweep and records the results as NDJSON in
# BENCH_pr2.json (one `go test -json` event per line, benchmark output
# events only). Dependency-free: POSIX sh + grep. Compare two recordings
# with e.g.
#
#   grep -o '"Output":"Benchmark[^"]*' BENCH_pr2.json
#
# or any JSON-aware tool.
set -eu

cd "$(dirname "$0")/.."
out=BENCH_pr2.json

: >"$out"
# -json wraps each line of benchmark output in a TestEvent; keep the
# events that carry benchmark results (name line, metrics line) and the
# per-package summaries, drop the noise.
go test -run NONE -bench . -benchmem -benchtime 1x -count 1 -json ./... |
	grep -e '"Output":"Benchmark' -e '"Output":"ok' >>"$out"

echo "wrote $out ($(wc -l <"$out") result lines)"
