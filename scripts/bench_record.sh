#!/bin/sh
# Runs the full benchmark sweep and records the results as NDJSON (one
# `go test -json` event per line, benchmark output events only) in the
# file named by $1, default BENCH_pr3.json. Dependency-free: POSIX sh +
# grep. Compare two recordings with e.g.
#
#   grep -o '"Output":"Benchmark[^"]*' BENCH_pr3.json
#
# or any JSON-aware tool.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr3.json}"

: >"$out"
# -json wraps each line of benchmark output in a TestEvent; keep the
# events that carry benchmark results and the per-package summaries,
# drop the noise. A long benchmark name splits its result across two
# events — the name, then a continuation holding only the metrics — so
# metric lines are matched by 'ns/op', not by the Benchmark prefix.
go test -run NONE -bench . -benchmem -benchtime 1x -count 1 -json ./... |
	grep -e '"Output":"Benchmark' -e 'ns/op' -e '"Output":"ok' >>"$out"

echo "wrote $out ($(wc -l <"$out") result lines)"
