#!/bin/sh
# Cluster smoke test: boot three spatialserverd shards and a
# spatialrouterd in front of them, check that scatter-gather answers
# over the router match a single node bit for bit (counts, a
# cross-shard spatial join, a window query), then SIGKILL one shard and
# require typed degradation — a partial-result error on streams, a hard
# error on counts, never a hang or a silently short answer — and a
# clean SIGTERM drain of everything left. Dependency-free: POSIX sh.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/spatialserverd" ./cmd/spatialserverd
go build -o "$tmp/spatialrouterd" ./cmd/spatialrouterd
go build -o "$tmp/spatialsql" ./cmd/spatialsql

# Every shard holds a full replica of the two datasets; the scoped
# scatter protocol must still return each result exactly once.
loads="-load counties:240:1 -load stars:400:2"
shard_addrs="127.0.0.1:7951,127.0.0.1:7952,127.0.0.1:7953"
router="127.0.0.1:7950"
single="127.0.0.1:7959"

for port in 7951 7952 7953 7959; do
	# shellcheck disable=SC2086
	"$tmp/spatialserverd" -addr "127.0.0.1:$port" $loads \
		>"$tmp/shard-$port.log" 2>&1 &
	pids="$pids $!"
	eval "pid_$port=$!"
done

"$tmp/spatialrouterd" -addr "$router" -manifest "$tmp/cluster.stf" \
	-shards "$shard_addrs" -bounds 0,0,1000,1000 -grid 8x8 -margin 6 \
	-retries 1 -retry-backoff 20ms -on-shard-loss partial \
	>"$tmp/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"

run_sql() { # addr sql -> combined output
	printf '%s;\n\\q\n' "$2" | "$tmp/spatialsql" -connect "$1" 2>&1
}

wait_up() { # addr
	i=0
	until run_sql "$1" 'SELECT count(*) FROM counties' | grep -q '(1 rows)'; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "cluster-smoke: $1 never became ready" >&2
			cat "$tmp"/*.log >&2
			exit 1
		fi
		sleep 0.1
	done
}
wait_up "$single"
wait_up "$router"

# The router must answer exactly like one node. Row order across a
# parallel merge is not deterministic, so compare sorted rows.
norm() { grep -v '^elapsed:' | sort; }
for sql in \
	'SELECT count(*) FROM counties' \
	"SELECT count(*) FROM TABLE(spatial_join('counties','geom','stars','geom','distance=5'))" \
	"SELECT id, name FROM counties WHERE sdo_within_distance(geom, 'POINT (500 500)', 'distance=150') = 'TRUE'"; do
	run_sql "$single" "$sql" | norm >"$tmp/want.txt"
	run_sql "$router" "$sql" | norm >"$tmp/got.txt"
	if grep -q '^error:' "$tmp/got.txt"; then
		echo "cluster-smoke: router errored on: $sql" >&2
		cat "$tmp/got.txt" >&2
		exit 1
	fi
	if ! cmp -s "$tmp/want.txt" "$tmp/got.txt"; then
		echo "cluster-smoke: router answer differs from single node for: $sql" >&2
		diff "$tmp/want.txt" "$tmp/got.txt" >&2 || true
		exit 1
	fi
	if [ "$(wc -l <"$tmp/got.txt")" -lt 2 ]; then
		echo "cluster-smoke: suspiciously empty answer for: $sql" >&2
		cat "$tmp/got.txt" >&2
		exit 1
	fi
done

# Crash one shard. Streams must now end in a typed partial-result
# error (the surviving shards' rows still flow), and counts must fail
# hard — a partial count would just be a wrong number.
kill -9 "$pid_7952"
wait "$pid_7952" 2>/dev/null || true

out="$(run_sql "$router" 'SELECT id FROM counties')"
echo "$out" | grep -q 'partial result' || {
	echo "cluster-smoke: stream after shard loss did not report a partial result:" >&2
	echo "$out" >&2
	exit 1
}
echo "$out" | grep -q '^[0-9]' || {
	echo "cluster-smoke: partial stream delivered no surviving rows:" >&2
	echo "$out" >&2
	exit 1
}
out="$(run_sql "$router" 'SELECT count(*) FROM counties')"
echo "$out" | grep -q '^error:.*shard' || {
	echo "cluster-smoke: count after shard loss did not fail:" >&2
	echo "$out" >&2
	exit 1
}

# Clean shutdown: the router and the surviving shards drain on SIGTERM
# and leave their final stats lines behind.
kill "$router_pid"
wait "$router_pid" 2>/dev/null || true
grep -q 'routed .* queries' "$tmp/router.log" || {
	echo "cluster-smoke: router did not log its final stats line:" >&2
	cat "$tmp/router.log" >&2
	exit 1
}
for port in 7951 7953 7959; do
	eval "p=\$pid_$port"
	kill "$p"
	wait "$p" 2>/dev/null || true
	grep -q 'served .* queries' "$tmp/shard-$port.log" || {
		echo "cluster-smoke: shard $port did not drain cleanly:" >&2
		cat "$tmp/shard-$port.log" >&2
		exit 1
	}
done
pids=""

echo "cluster-smoke: ok (3-shard scatter matches single node, typed degradation on shard loss, clean drain)"
