package spatialtf

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"spatialtf/internal/geom"
	"spatialtf/internal/rtree"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// Pair is one spatial-join result: the rowids of the interacting rows
// from the first and second table.
type Pair = sjoin.Pair

// JoinOptions tunes a spatial join.
type JoinOptions struct {
	// Mask is the interaction predicate name (default "anyinteract").
	Mask string
	// Distance, when positive, makes it a within-distance join (the
	// paper's Table 1 "specifying a distance").
	Distance float64
	// Parallel is the number of parallel table-function instances; 0 or
	// 1 runs the single pipelined spatial_join of §4, >1 the subtree-
	// decomposed parallel join of §4.1. Paths selected through Algo
	// treat 0 as "use every core" (runtime.GOMAXPROCS).
	Parallel int
	// Algo selects the join path. "" keeps the legacy Parallel-driven
	// dispatch above; "auto" engages the cost model (cardinalities, MBR
	// density, worker count); "nested", "subtree", and "grid" force a
	// path — the ablation override. "grid" is the grid-partitioned
	// parallel join: a uniform tile grid with two-layer A/B/C/D
	// duplicate avoidance, a per-tile plane sweep, and dynamic dealing
	// of tiles to the instances.
	Algo string
	// CandidateCap bounds the in-memory candidate array of the §4.2
	// two-stage evaluation (0 = default).
	CandidateCap int
	// NoSortCandidates disables the §4.2 sort of candidates by first
	// rowid before the secondary filter (ablation switch; the default
	// follows the paper and sorts).
	NoSortCandidates bool
	// UseInteriorApprox enables the interior-approximation fast accept
	// on ANYINTERACT joins over indexes created with
	// IndexOptions.InteriorEffort > 0.
	UseInteriorApprox bool
	// NestedPrimaryFilter forces the nested entry-pair scan in the
	// primary filter instead of the default plane sweep (ablation
	// switch).
	NestedPrimaryFilter bool
	// SweepThreshold is the minimum combined entry count of a node pair
	// for the plane sweep to engage (0 = default).
	SweepThreshold int
	// GeomCacheBytes selects the decoded-geometry cache the secondary
	// filter fetches through: 0 (default) shares the database-wide
	// cache, > 0 gives this join a private cache of that byte size, and
	// < 0 disables caching (ablation switch).
	GeomCacheBytes int
	// Scope, when non-nil, restricts the result to the pairs this
	// cluster shard owns under the reference-point rule (see
	// ClusterScope): the shard-side half of a scatter-gather cluster
	// join. The cluster's replication margin must cover Distance.
	Scope *ClusterScope
}

// CacheStats summarises the decoded-geometry cache (see
// DB.GeomCacheStats).
type CacheStats = sjoin.CacheStats

func (o JoinOptions) config() (sjoin.Config, error) {
	cfg := sjoin.DefaultConfig()
	if o.Mask != "" {
		m, err := geom.ParseMask(o.Mask)
		if err != nil {
			return cfg, err
		}
		cfg.Mask = m
	}
	cfg.Distance = o.Distance
	cfg.CandidateCap = o.CandidateCap
	cfg.SortCandidates = !o.NoSortCandidates
	cfg.UseInteriorApprox = o.UseInteriorApprox
	cfg.NestedPrimaryFilter = o.NestedPrimaryFilter
	cfg.SweepThreshold = o.SweepThreshold
	cfg.GeomCacheBytes = o.GeomCacheBytes
	return cfg, nil
}

// joinConfig resolves JoinOptions against this database: the default
// cache selection (GeomCacheBytes == 0) binds the join to the shared
// per-database cache.
func (db *DB) joinConfig(opt JoinOptions) (sjoin.Config, error) {
	cfg, err := opt.config()
	if err != nil {
		return cfg, err
	}
	if opt.GeomCacheBytes == 0 {
		cfg.GeomCache = db.geomCache
	}
	db.mu.RLock()
	cfg.Instr = db.instr
	db.mu.RUnlock()
	return cfg, nil
}

// GeomCacheStats reports the hit/miss counters and residency of the
// database-wide decoded-geometry cache.
func (db *DB) GeomCacheStats() CacheStats {
	return db.geomCache.Stats()
}

// joinSource resolves (table, index) into an sjoin operand.
func (db *DB) joinSource(table, index string) (sjoin.Source, error) {
	t, err := db.Table(table)
	if err != nil {
		return sjoin.Source{}, err
	}
	ix, err := db.Index(index)
	if err != nil {
		return sjoin.Source{}, err
	}
	meta := ix.Meta()
	if meta.TableName != table {
		return sjoin.Source{}, fmt.Errorf("spatialtf: index %q is on table %q, not %q", index, meta.TableName, table)
	}
	tree, err := ix.rtree()
	if err != nil {
		return sjoin.Source{}, err
	}
	return sjoin.Source{Table: t.inner, Column: meta.ColumnName, Tree: tree}, nil
}

// pinTrees read-pins the operand R-trees so concurrent DML waits for
// the cursor instead of racing its NodeRef traversal, returning the
// matching unpin. Pins are acquired in tree creation order so two
// cursors over the same pair of trees (in either operand order) cannot
// deadlock against queued writers.
func pinTrees(a, b *rtree.Tree) func() {
	if a == b {
		a.Pin()
		return a.Unpin
	}
	if a.Seq() > b.Seq() {
		a, b = b, a
	}
	a.Pin()
	//spatiallint:ignore lockdiscipline both pins are read locks on distinct trees taken in Seq() creation order, so no two holders can invert the order and deadlock against a queued writer
	b.Pin()
	return func() {
		b.Unpin()
		a.Unpin()
	}
}

// JoinCursor streams spatial-join result pairs — the pipelined rows of
//
//	select rid1, rid2 from TABLE(spatial_join(...))
//
// While the cursor is open the operand R-trees are pinned: reads stay
// concurrent but DML on the joined tables blocks until Close (or the
// stream is drained). Always Close a JoinCursor.
type JoinCursor struct {
	cur    storage.Cursor
	unpin  func()
	trace  *telemetry.Trace // nil unless DB.SetTracer is active
	closed sync.Once
}

// Next returns the next result pair; ok is false at end of stream.
func (jc *JoinCursor) Next() (p Pair, ok bool, err error) {
	_, row, ok, err := jc.cur.Next()
	if err != nil || !ok {
		return Pair{}, false, err
	}
	p, err = sjoin.PairFromRow(row)
	if err != nil {
		return Pair{}, false, err
	}
	return p, true, nil
}

// Close releases the cursor (and cancels parallel instances) and
// unpins the operand trees. Close is idempotent.
func (jc *JoinCursor) Close() error {
	err := jc.cur.Close()
	jc.closed.Do(func() {
		jc.trace.Finish()
		if jc.unpin != nil {
			jc.unpin()
		}
	})
	return err
}

// Collect drains the cursor into a slice and closes it.
func (jc *JoinCursor) Collect() ([]Pair, error) {
	defer jc.Close()
	return sjoin.CollectPairs(jc.cur)
}

// SpatialJoin evaluates the index-based spatial join of two R-tree-
// indexed tables through the spatial_join table function, pipelined
// (Parallel ≤ 1) or parallel over subtree pairs (Parallel > 1).
func (db *DB) SpatialJoin(tableA, indexA, tableB, indexB string, opt JoinOptions) (*JoinCursor, error) {
	cfg, err := db.joinConfig(opt)
	if err != nil {
		return nil, err
	}
	a, err := db.joinSource(tableA, indexA)
	if err != nil {
		return nil, err
	}
	b, err := db.joinSource(tableB, indexB)
	if err != nil {
		return nil, err
	}
	algo, workers, err := resolveJoinAlgo(a, b, cfg, opt)
	if err != nil {
		return nil, err
	}
	// A per-query trace (when a tracer is attached) spans the cursor
	// from here to Close; the join instances feed its stage aggregates.
	trace := db.getTracer().Begin(fmt.Sprintf("spatial_join %s*%s", tableA, tableB))
	cfg.Trace = trace
	unpin := pinTrees(a.Tree, b.Tree)
	var cur storage.Cursor
	switch algo {
	case sjoin.AlgoGrid:
		cur, err = sjoin.GridParallelJoin(a, b, cfg, workers)
	case sjoin.AlgoNested:
		var pairs []Pair
		pairs, err = sjoin.NestedLoop(a, b, cfg)
		if err == nil {
			cur = sjoin.PairsCursor(pairs)
		}
	default: // AlgoSubtree: the paper's serial/parallel R-tree paths
		if workers > 1 {
			cur, err = sjoin.ParallelIndexJoin(a, b, cfg, workers)
		} else {
			cur, err = sjoin.IndexJoin(a, b, cfg)
		}
	}
	if err != nil {
		unpin()
		trace.Finish()
		return nil, err
	}
	if opt.Scope != nil {
		scur, serr := sjoin.ScopedPairFilter(cur, a, b, cfg.Distance, cfg.GeomCache, opt.Scope.OwnsPoint)
		if serr != nil {
			cur.Close()
			unpin()
			trace.Finish()
			return nil, serr
		}
		cur = scur
	}
	return &JoinCursor{cur: cur, unpin: unpin, trace: trace}, nil
}

// resolveJoinAlgo maps JoinOptions onto a concrete join path and worker
// count. Algo == "" preserves the legacy dispatch (Parallel > 1 selects
// the subtree-parallel path, else serial); "auto" runs the sjoin cost
// model; anything else is a forced override. Paths chosen through Algo
// resolve Parallel <= 0 to all cores.
func resolveJoinAlgo(a, b sjoin.Source, cfg sjoin.Config, opt JoinOptions) (sjoin.Algo, int, error) {
	if opt.Algo == "" {
		if opt.Parallel > 1 {
			return sjoin.AlgoSubtree, opt.Parallel, nil
		}
		return sjoin.AlgoSubtree, 1, nil
	}
	algo, err := sjoin.ParseAlgo(opt.Algo)
	if err != nil {
		return 0, 0, fmt.Errorf("spatialtf: %w", err)
	}
	if algo == sjoin.AlgoAuto {
		pc := sjoin.ChoosePlan(a, b, cfg, opt.Parallel)
		return pc.Algo, pc.Workers, nil
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return algo, workers, nil
}

// ExplainJoin describes how a SpatialJoin with the given options would
// execute, without running it: the strategy, the operand index shapes,
// and — for parallel joins — the subtree decomposition (§4.1) including
// the number of scheduled and MBR-pruned subtree-pair tasks. It is the
// EXPLAIN PLAN of the spatial_join table function.
func (db *DB) ExplainJoin(tableA, indexA, tableB, indexB string, opt JoinOptions) (string, error) {
	cfg, err := db.joinConfig(opt)
	if err != nil {
		return "", err
	}
	a, err := db.joinSource(tableA, indexA)
	if err != nil {
		return "", err
	}
	b, err := db.joinSource(tableB, indexB)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	pred := fmt.Sprintf("mask=%s", cfg.Mask)
	if cfg.Distance > 0 {
		pred = fmt.Sprintf("distance=%g", cfg.Distance)
	}
	fmt.Fprintf(&sb, "SPATIAL JOIN (%s)\n", pred)
	fmt.Fprintf(&sb, "  operand A: table %s via index %s (R-tree: %d items, height %d, fanout %d)\n",
		tableA, indexA, a.Tree.Len(), a.Tree.Height(), a.Tree.MaxEntries())
	fmt.Fprintf(&sb, "  operand B: table %s via index %s (R-tree: %d items, height %d, fanout %d)\n",
		tableB, indexB, b.Tree.Len(), b.Tree.Height(), b.Tree.MaxEntries())
	fmt.Fprintf(&sb, "  two-stage evaluation: candidate array cap %d, secondary filter fetch order %s\n",
		cfg.CandidateCap, map[bool]string{true: "sorted by first rowid", false: "arrival order"}[cfg.SortCandidates])
	if cfg.NestedPrimaryFilter {
		sb.WriteString("  primary filter: nested entry-pair scan\n")
	} else {
		thr := cfg.SweepThreshold
		if thr <= 0 {
			thr = sjoin.DefaultSweepThreshold
		}
		fmt.Fprintf(&sb, "  primary filter: plane sweep (node pairs with >= %d entries), nested scan below\n", thr)
	}
	switch {
	case cfg.GeomCache != nil:
		sb.WriteString("  decoded-geometry cache: shared per-database\n")
	case cfg.GeomCacheBytes < 0:
		sb.WriteString("  decoded-geometry cache: disabled\n")
	default:
		fmt.Fprintf(&sb, "  decoded-geometry cache: private, %d bytes\n", cfg.GeomCacheBytes)
	}
	if cfg.UseInteriorApprox {
		sb.WriteString("  interior-approximation fast accept: enabled\n")
	}
	algo, workers, err := resolveJoinAlgo(a, b, cfg, opt)
	if err != nil {
		return "", err
	}
	if opt.Algo != "" {
		fmt.Fprintf(&sb, "  algorithm: %s (hint %q)\n", algo, opt.Algo)
		if opt.Algo == "auto" {
			pc := sjoin.ChoosePlan(a, b, cfg, opt.Parallel)
			fmt.Fprintf(&sb, "  cost model: %s\n", pc.Reason)
		}
	}
	switch algo {
	case sjoin.AlgoGrid:
		cols, rows := sjoin.GridShape(a.Tree.Len(), b.Tree.Len(), workers)
		fmt.Fprintf(&sb, "  strategy: GRID-PARTITIONED parallel table function, %d instances\n", workers)
		fmt.Fprintf(&sb, "  grid decomposition: %dx%d uniform tiles over the joint extent; per-tile plane sweep; two-layer A/B/C/D classes (no dedup pass); tiles dealt dynamically, longest first\n",
			cols, rows)
	case sjoin.AlgoNested:
		sb.WriteString("  strategy: NESTED LOOP (per-row probes of operand B's index)\n")
	default:
		if workers > 1 {
			pairs := sjoin.SubtreePairsForWorkers(a.Tree, b.Tree, workers, cfg)
			descend := 0
			if len(pairs) > 0 {
				descend = a.Tree.Height() - pairs[0].A.Level()
			}
			total := len(a.Tree.SubtreeRoots(descend)) * len(b.Tree.SubtreeRoots(descend))
			fmt.Fprintf(&sb, "  strategy: PARALLEL pipelined table function, %d instances\n", workers)
			fmt.Fprintf(&sb, "  subtree decomposition: descend %d level(s); %d subtree-pair tasks scheduled, %d pruned as disjoint; tasks dealt longest first\n",
				descend, len(pairs), total-len(pairs))
		} else {
			sb.WriteString("  strategy: SERIAL pipelined table function (single root pair)\n")
		}
	}
	return sb.String(), nil
}

// NestedLoopJoin evaluates the same join with the pre-9i baseline
// strategy (per-row index probes), the comparison point of Tables 1-2.
func (db *DB) NestedLoopJoin(tableA, indexA, tableB, indexB string, opt JoinOptions) ([]Pair, error) {
	cfg, err := db.joinConfig(opt)
	if err != nil {
		return nil, err
	}
	a, err := db.joinSource(tableA, indexA)
	if err != nil {
		return nil, err
	}
	b, err := db.joinSource(tableB, indexB)
	if err != nil {
		return nil, err
	}
	return sjoin.NestedLoop(a, b, cfg)
}

// QuadtreeJoin evaluates a join over two Quadtree-indexed tables with
// the tile merge join (extension; intersection-style masks only).
func (db *DB) QuadtreeJoin(tableA, indexA, tableB, indexB string, opt JoinOptions) ([]Pair, error) {
	cfg, err := db.joinConfig(opt)
	if err != nil {
		return nil, err
	}
	srcOf := func(table, index string) (sjoin.QSource, error) {
		t, err := db.Table(table)
		if err != nil {
			return sjoin.QSource{}, err
		}
		ix, err := db.Index(index)
		if err != nil {
			return sjoin.QSource{}, err
		}
		meta := ix.Meta()
		if meta.TableName != table {
			return sjoin.QSource{}, fmt.Errorf("spatialtf: index %q is on table %q, not %q", index, meta.TableName, table)
		}
		qi, err := ix.qindex()
		if err != nil {
			return sjoin.QSource{}, err
		}
		return sjoin.QSource{Table: t.inner, Column: meta.ColumnName, Index: qi}, nil
	}
	a, err := srcOf(tableA, indexA)
	if err != nil {
		return nil, err
	}
	b, err := srcOf(tableB, indexB)
	if err != nil {
		return nil, err
	}
	return sjoin.QuadtreeJoin(a, b, cfg)
}
