package spatialtf

// One testing.B benchmark per paper table and figure, plus ablation
// benches for the design choices called out in DESIGN.md §6. These run
// at laptop scale; cmd/spatialbench reproduces the tables at any scale
// with ratio reporting.

import (
	"fmt"
	"sync"
	"testing"

	"spatialtf/internal/bench"
	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
	"spatialtf/internal/rtree"
	"spatialtf/internal/sjoin"
	"spatialtf/internal/storage"
	"spatialtf/internal/telemetry"
)

// Shared fixtures, built once.
var (
	fixOnce     sync.Once
	fixCounties sjoin.Source // 900 counties
	fixStars    sjoin.Source // 5000 stars
	fixBlocks   sjoin.Source // 1500 block groups (skewed)
	fixBGTab    *storage.Table
	fixBGDs     datagen.Dataset
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		var err error
		fixCounties, err = benchSource("bench_counties", datagen.Counties(900, 1))
		if err != nil {
			panic(err)
		}
		fixStars, err = benchSource("bench_stars", datagen.Stars(5000, 2))
		if err != nil {
			panic(err)
		}
		fixBGDs = datagen.BlockGroups(1500, 3)
		fixBGTab, _, err = datagen.LoadTable("bench_bg", fixBGDs)
		if err != nil {
			panic(err)
		}
		fixBlocks, err = benchSource("bench_blocks", fixBGDs)
		if err != nil {
			panic(err)
		}
	})
}

func benchSource(name string, ds datagen.Dataset) (sjoin.Source, error) {
	tab, _, err := datagen.LoadTable(name, ds)
	if err != nil {
		return sjoin.Source{}, err
	}
	tree, _, err := idxbuild.CreateRtree(tab, "geom", 0, 1)
	if err != nil {
		return sjoin.Source{}, err
	}
	return sjoin.Source{Table: tab, Column: "geom", Tree: tree}, nil
}

// --- Table 1: counties self-join, nested loop vs index join ---

func BenchmarkTable1NestedLoop(b *testing.B) {
	fixtures(b)
	for _, d := range []float64{0, 25} {
		b.Run(fmt.Sprintf("distance=%g", d), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.Distance = d
			for i := 0; i < b.N; i++ {
				pairs, err := sjoin.NestedLoop(fixCounties, fixCounties, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(pairs) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkTable1IndexJoin(b *testing.B) {
	fixtures(b)
	for _, d := range []float64{0, 25} {
		b.Run(fmt.Sprintf("distance=%g", d), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.Distance = d
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(fixCounties, fixCounties, cfg)
				if err != nil {
					b.Fatal(err)
				}
				n, _, err := sjoin.RunJoinFunction(fn, 0)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// --- Table 2: star self-join scaling, serial vs parallel join ---

func BenchmarkTable2IndexJoin(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	for i := 0; i < b.N; i++ {
		fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sjoin.RunJoinFunction(fn, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Telemetry overhead ablation: the identical star self-join with live
// instruments and a per-query span trace attached. The delta against
// BenchmarkTable2IndexJoin (which runs on the Nop registry) is the full
// enabled-observability cost; the budget in DESIGN.md §12 is <= 2%.
func BenchmarkTable2IndexJoinTelemetry(b *testing.B) {
	fixtures(b)
	reg := telemetry.New()
	tracer := telemetry.NewTracer(reg, -1, nil)
	cfg := sjoin.DefaultConfig()
	cfg.Instr = sjoin.NewInstruments(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Trace = tracer.Begin("bench stars*stars")
		fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sjoin.RunJoinFunction(fn, 0); err != nil {
			b.Fatal(err)
		}
		cfg.Trace.Finish()
	}
}

func BenchmarkTable2ParallelJoin(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sjoin.SimulateParallelIndexJoin(fixStars, fixStars, cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("empty result")
				}
				b.ReportMetric(res.Elapsed.Seconds(), "sim-makespan-s")
			}
		})
	}
}

// Table 2 on the grid-partitioned path: same star self-join, tiles
// swept per-partition under the deterministic scheduler. sim-makespan-s
// against BenchmarkTable2ParallelJoin at the same worker count is the
// grid-vs-subtree comparison; tile-skew-max/mean-ms quantify how even
// the tile costs are (dynamic dealing absorbs the difference).
func BenchmarkTable2GridJoin(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sjoin.SimulateGridJoin(fixStars, fixStars, cfg, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("empty result")
				}
				max, mean := res.TileSkew()
				b.ReportMetric(res.Elapsed.Seconds(), "sim-makespan-s")
				b.ReportMetric(float64(max.Microseconds())/1e3, "tile-skew-max-ms")
				b.ReportMetric(float64(mean.Microseconds())/1e3, "tile-skew-mean-ms")
			}
		})
	}
}

func BenchmarkTable2NestedLoop(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := sjoin.NestedLoop(fixStars, fixStars, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: parallel index creation ---

func BenchmarkTable3QuadtreeCreate(b *testing.B) {
	fixtures(b)
	grid, err := quadtree.NewGrid(fixBGDs.Bounds, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, stats, err := idxbuild.CreateQuadtreeSim(fixBGTab, "geom", grid, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Total.Seconds(), "sim-total-s")
			}
		})
	}
}

func BenchmarkTable3RtreeCreate(b *testing.B) {
	fixtures(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, stats, err := idxbuild.CreateRtreeSim(fixBGTab, "geom", 0, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.Total.Seconds(), "sim-total-s")
			}
		})
	}
}

// --- Figure 1: subtree-pair decomposition ---

func BenchmarkFigure1SubtreePairs(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	for i := 0; i < b.N; i++ {
		pairs := sjoin.SubtreePairs(fixStars.Tree, fixStars.Tree, 1, cfg)
		if len(pairs) == 0 {
			b.Fatal("no subtree pairs")
		}
	}
}

// --- Figure 2: the tessellation pipeline ---

func BenchmarkFigure2TessellationPipeline(b *testing.B) {
	fixtures(b)
	grid, err := quadtree.NewGrid(fixBGDs.Bounds, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, stats, err := idxbuild.CreateQuadtree(fixBGTab, "geom", grid, 4)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Entries == 0 {
			b.Fatal("no tiles")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// Ablation 1: candidate fetch order — sorted by first rowid (paper) vs
// arrival order.
func BenchmarkAblationCandidateOrder(b *testing.B) {
	fixtures(b)
	for _, sorted := range []bool{true, false} {
		b.Run(fmt.Sprintf("sorted=%v", sorted), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.SortCandidates = sorted
			cfg.CandidateCap = 1 << 20
			// Cache off: with caching both orders converge on one fetch
			// per distinct rowid, hiding the ordering effect under test.
			cfg.GeomCacheBytes = -1
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := sjoin.RunJoinFunction(fn, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.GeomFetches), "geom-fetches")
			}
		})
	}
}

// Ablation 2: subtree decomposition level for the parallel join.
func BenchmarkAblationSubtreeLevel(b *testing.B) {
	fixtures(b)
	cfg := sjoin.DefaultConfig()
	maxDescend := fixStars.Tree.Height() - 1
	for d := 0; d <= maxDescend; d++ {
		b.Run(fmt.Sprintf("descend=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pairs := sjoin.SubtreePairs(fixStars.Tree, fixStars.Tree, d, cfg)
				b.ReportMetric(float64(len(pairs)), "tasks")
			}
		})
	}
}

// Ablation 3: candidate array capacity (the paper's "determined by
// existing memory resources").
func BenchmarkAblationCandidateCap(b *testing.B) {
	fixtures(b)
	for _, cap := range []int{64, 1024, 16384, 1 << 20} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.CandidateCap = cap
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := sjoin.RunJoinFunction(fn, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 4: R-tree construction strategy — dynamic inserts vs STR
// packing.
func BenchmarkAblationRtreeBuild(b *testing.B) {
	fixtures(b)
	items := make([]rtree.Item, 0, fixBGTab.Len())
	col, _ := fixBGTab.ColumnIndex("geom")
	fixBGTab.Scan(func(id storage.RowID, row storage.Row) bool {
		items = append(items, rtree.Item{MBR: geom.MBROf(row[col].G), ID: id})
		return true
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(0)
			for _, it := range items {
				if err := tr.Insert(it); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("str", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := make([]rtree.Item, len(items))
			copy(work, items)
			rtree.BulkLoad(work, 0)
		}
	})
}

// Ablation 5: quadtree tiling level — tessellation cost vs candidate
// precision.
func BenchmarkAblationTilingLevel(b *testing.B) {
	fixtures(b)
	for _, level := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			grid, err := quadtree.NewGrid(fixBGDs.Bounds, level)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				idx, stats, err := idxbuild.CreateQuadtree(fixBGTab, "geom", grid, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Entries), "tiles")
				_ = idx
			}
		})
	}
}

// Ablation 6: interior-approximation fast accept (the SSTD 2001
// optimization) vs the plain two-stage join.
func BenchmarkAblationInteriorApprox(b *testing.B) {
	ds := datagen.Stars(5000, 29)
	tab, _, err := datagen.LoadTable("bench_interior", ds)
	if err != nil {
		b.Fatal(err)
	}
	tree, _, err := idxbuild.CreateRtreeOpts(tab, "geom", idxbuild.RtreeOptions{InteriorEffort: 3})
	if err != nil {
		b.Fatal(err)
	}
	src := sjoin.Source{Table: tab, Column: "geom", Tree: tree}
	for _, use := range []bool{false, true} {
		b.Run(fmt.Sprintf("interior=%v", use), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.UseInteriorApprox = use
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(src, src, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := sjoin.RunJoinFunction(fn, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.GeomFetches), "geom-fetches")
				b.ReportMetric(float64(stats.FastAccepts), "fast-accepts")
			}
		})
	}
}

// Ablation 7: primary-filter algorithm — forward plane sweep over
// xlo-sorted entry lists (default) vs the nested entry-pair scan.
// Node accesses are identical by construction (same traversal); the
// sweep changes only the per-node-pair intersection cost.
func BenchmarkAblationPrimaryFilter(b *testing.B) {
	fixtures(b)
	for _, nested := range []bool{false, true} {
		b.Run(fmt.Sprintf("nested=%v", nested), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.NestedPrimaryFilter = nested
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := sjoin.RunJoinFunction(fn, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.NodeAccesses), "node-accesses")
				b.ReportMetric(float64(stats.Candidates), "candidates")
			}
		})
	}
}

// Ablation 8: decoded-geometry cache on (default size) vs off,
// reporting the secondary filter's base-table fetch count and the
// cache hit rate.
func BenchmarkAblationGeomCache(b *testing.B) {
	fixtures(b)
	for _, cached := range []bool{true, false} {
		b.Run(fmt.Sprintf("cache=%v", cached), func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			if !cached {
				cfg.GeomCacheBytes = -1
			}
			for i := 0; i < b.N; i++ {
				fn, err := sjoin.NewJoinFunction(fixStars, fixStars, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := sjoin.RunJoinFunction(fn, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.GeomFetches), "geom-fetches")
				if looks := stats.CacheHits + stats.CacheMisses; looks > 0 {
					b.ReportMetric(100*float64(stats.CacheHits)/float64(looks), "hit-%")
				}
			}
		})
	}
}

// Ablation 9: grid tile count — the GridShape default vs coarser and
// finer uniform grids on the star self-join at 4 workers. Fewer tiles
// mean less per-entry replication but worse load balance (higher
// tile-skew); more tiles amortise skew at higher partition cost.
func BenchmarkAblationGridTiles(b *testing.B) {
	fixtures(b)
	for _, tiles := range []int{0, 16, 64, 256, 1024} {
		name := fmt.Sprintf("tiles=%d", tiles)
		if tiles == 0 {
			name = "tiles=auto"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sjoin.DefaultConfig()
			cfg.GridTiles = tiles
			for i := 0; i < b.N; i++ {
				res, err := sjoin.SimulateGridJoin(fixStars, fixStars, cfg, 4)
				if err != nil {
					b.Fatal(err)
				}
				max, mean := res.TileSkew()
				b.ReportMetric(res.Elapsed.Seconds(), "sim-makespan-s")
				b.ReportMetric(float64(len(res.TileTimes)), "tiles")
				b.ReportMetric(float64(res.Stats.Candidates), "candidates")
				if mean > 0 {
					b.ReportMetric(float64(max)/float64(mean), "skew-ratio")
				}
			}
		})
	}
}

// Ablation 10: grid vs subtree-pair partitioning at 4 workers across
// the three datagen families — uniform polygons (counties), clustered
// points (stars), and skewed polygons (block groups). This is the
// spread the cost model in sjoin.ChoosePlan arbitrates.
func BenchmarkAblationGridVsSubtree(b *testing.B) {
	fixtures(b)
	families := []struct {
		name string
		src  sjoin.Source
	}{
		{"uniform", fixCounties},
		{"clustered", fixStars},
		{"skewed", fixBlocks},
	}
	for _, fam := range families {
		for _, grid := range []bool{true, false} {
			algo := "subtree"
			if grid {
				algo = "grid"
			}
			b.Run(fam.name+"/algo="+algo, func(b *testing.B) {
				cfg := sjoin.DefaultConfig()
				for i := 0; i < b.N; i++ {
					var elapsed float64
					if grid {
						res, err := sjoin.SimulateGridJoin(fam.src, fam.src, cfg, 4)
						if err != nil {
							b.Fatal(err)
						}
						elapsed = res.Elapsed.Seconds()
					} else {
						res, err := sjoin.SimulateParallelIndexJoin(fam.src, fam.src, cfg, 4)
						if err != nil {
							b.Fatal(err)
						}
						elapsed = res.Elapsed.Seconds()
					}
					b.ReportMetric(elapsed, "sim-makespan-s")
				}
			})
		}
	}
}

// --- Micro-benchmarks for the substrates ---

func BenchmarkGeomIntersectsPolyPoly(b *testing.B) {
	fixtures(b)
	gs := fixBGDs.Geoms
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.Intersects(gs[i%len(gs)], gs[(i+1)%len(gs)])
	}
}

func BenchmarkRtreeWindowQuery(b *testing.B) {
	fixtures(b)
	q := geom.MBR{MinX: 400, MinY: 400, MaxX: 480, MaxY: 480}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixStars.Tree.Search(q, func(rtree.Item) bool { return true })
	}
}

func BenchmarkTessellateComplexPolygon(b *testing.B) {
	fixtures(b)
	grid, err := quadtree.NewGrid(fixBGDs.Bounds, 9)
	if err != nil {
		b.Fatal(err)
	}
	g := fixBGDs.Geoms[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quadtree.Tessellate(grid, g); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity: the harness runs end-to-end at bench scale; keeps -bench runs
// honest when benches are filtered.
func BenchmarkHarnessTable1Tiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(bench.Table1Options{Counties: 64, Seed: 1, Distances: []float64{0}})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].ResultSize == 0 {
			b.Fatal("empty result")
		}
	}
}
