package spatialtf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"spatialtf/internal/storage"
)

// Database snapshots: Save writes every table (live rows) and the
// spatial-index catalogue to a stream; Restore rebuilds a database from
// it, recreating indexes with their original parameters. This is the
// export/import durability model (like exp/imp), not a physical
// datafile copy: rowids are NOT stable across Save/Restore — rows are
// reinserted in storage order and indexes are rebuilt.

// snapshot format (little endian):
//
//	magic "STFSNAP1"
//	uvarint table count
//	per table: string name; uvarint ncols; per column (string name,
//	  byte type); uvarint row count; per row (uvarint len, bytes)
//	uvarint index count
//	per index: strings name/table/column/kind; uvarints fanout,
//	  tilingLevel, interiorEffort, parallelHint; 4 × float64 bounds
const snapshotMagic = "STFSNAP1"

// Restore bounds: counts in the stream are attacker-controlled (a
// snapshot may come off the network or a shared filesystem), so every
// count is checked before it sizes an allocation.
const (
	// maxSnapshotCols caps columns per table, matching the wire
	// protocol's schema cap in wire.ParseDescribe.
	maxSnapshotCols = 4096
	// maxSnapshotRowImage caps one encoded row (strings and blobs
	// included); the storage layer's own blob limit is far below this.
	maxSnapshotRowImage = 1 << 24
)

// Save serialises the database. Tables are written in name order so
// snapshots of equal databases are byte-identical.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)

	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		inner := t.Inner()
		writeString(bw, name)
		schema := inner.Schema()
		writeUvarint(bw, uint64(len(schema)))
		for _, c := range schema {
			writeString(bw, c.Name)
			writeByte(bw, byte(c.Type))
		}
		writeUvarint(bw, uint64(inner.Len()))
		var encodeErr error
		scanErr := inner.Scan(func(_ RowID, row Row) bool {
			img, err := storage.EncodeRow(schema, row)
			if err != nil {
				encodeErr = err
				return false
			}
			writeUvarint(bw, uint64(len(img)))
			writeBytes(bw, img)
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		if encodeErr != nil {
			return encodeErr
		}
	}

	metas, err := db.IndexMetadata()
	if err != nil {
		return err
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].IndexName < metas[j].IndexName })
	writeUvarint(bw, uint64(len(metas)))
	for _, m := range metas {
		writeString(bw, m.IndexName)
		writeString(bw, m.TableName)
		writeString(bw, m.ColumnName)
		writeString(bw, string(m.Kind))
		writeUvarint(bw, uint64(m.Fanout))
		writeUvarint(bw, uint64(m.TilingLevel))
		writeUvarint(bw, uint64(m.InteriorEffort))
		var fbuf [8]byte
		for _, f := range []float64{m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY} {
			binary.LittleEndian.PutUint64(fbuf[:], uint64FromFloat(f))
			writeBytes(bw, fbuf[:])
		}
	}
	return bw.Flush()
}

// Restore reads a snapshot and returns a new database with the tables
// loaded and every index recreated (rebuilt with `parallel` workers;
// 0 = sequential).
func Restore(r io.Reader, parallel int) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("spatialtf: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("spatialtf: bad snapshot magic %q", magic)
	}
	db := Open()

	tableCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("spatialtf: snapshot table count: %w", err)
	}
	for ti := uint64(0); ti < tableCount; ti++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		ncols, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if ncols > maxSnapshotCols {
			return nil, fmt.Errorf("spatialtf: snapshot table %q: column count %d exceeds limit %d", name, ncols, maxSnapshotCols)
		}
		schema := make([]Column, ncols)
		for i := range schema {
			cn, err := readString(br)
			if err != nil {
				return nil, err
			}
			tb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			schema[i] = Column{Name: cn, Type: storage.ColType(tb)}
		}
		tab, err := db.CreateTable(name, schema)
		if err != nil {
			return nil, fmt.Errorf("spatialtf: restore table %q: %w", name, err)
		}
		rowCount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for ri := uint64(0); ri < rowCount; ri++ {
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if l > maxSnapshotRowImage {
				return nil, fmt.Errorf("spatialtf: snapshot %q row %d: image length %d exceeds limit %d", name, ri, l, maxSnapshotRowImage)
			}
			img := make([]byte, l)
			if _, err := io.ReadFull(br, img); err != nil {
				return nil, err
			}
			row, err := storage.DecodeRow(schema, img)
			if err != nil {
				return nil, fmt.Errorf("spatialtf: restore %q row %d: %w", name, ri, err)
			}
			if _, err := tab.Insert(row...); err != nil {
				return nil, err
			}
		}
	}

	idxCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("spatialtf: snapshot index count: %w", err)
	}
	for ii := uint64(0); ii < idxCount; ii++ {
		var fields [4]string
		for i := range fields {
			s, err := readString(br)
			if err != nil {
				return nil, err
			}
			fields[i] = s
		}
		fanout, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		level, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		effort, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		var bounds MBR
		for _, dst := range []*float64{&bounds.MinX, &bounds.MinY, &bounds.MaxX, &bounds.MaxY} {
			var fbuf [8]byte
			if _, err := io.ReadFull(br, fbuf[:]); err != nil {
				return nil, err
			}
			*dst = floatFromUint64(binary.LittleEndian.Uint64(fbuf[:]))
		}
		opt := IndexOptions{
			Fanout:         int(fanout),
			TilingLevel:    int(level),
			InteriorEffort: int(effort),
			Parallel:       parallel,
		}
		if IndexKind(fields[3]) == Quadtree {
			opt.Bounds = bounds
		}
		if _, err := db.CreateIndexOn(fields[0], fields[1], fields[2], IndexKind(fields[3]), opt); err != nil {
			return nil, fmt.Errorf("spatialtf: restore index %q: %w", fields[0], err)
		}
	}
	// Trailing garbage is an error: snapshots are exact.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("spatialtf: trailing bytes after snapshot")
	}
	return db, nil
}

// --- little helpers ---

// The write helpers below deliberately drop per-call error results:
// bufio.Writer errors are sticky, every later write is a no-op after
// the first failure, and Save's final Flush reports it. Checking each
// call would triple the line count of the snapshot writer for no added
// safety.

//spatiallint:ignore wireerr bufio errors are sticky; Save's final Flush reports the first failure
func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

//spatiallint:ignore wireerr bufio errors are sticky; Save's final Flush reports the first failure
func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

//spatiallint:ignore wireerr bufio errors are sticky; Save's final Flush reports the first failure
func writeByte(w *bufio.Writer, b byte) {
	w.WriteByte(b)
}

//spatiallint:ignore wireerr bufio errors are sticky; Save's final Flush reports the first failure
func writeBytes(w *bufio.Writer, b []byte) {
	w.Write(b)
}

func readString(r *bufio.Reader) (string, error) {
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if l > 1<<20 {
		return "", fmt.Errorf("spatialtf: snapshot string of %d bytes", l)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }
func floatFromUint64(u uint64) float64 { return math.Float64frombits(u) }
