package spatialtf

import (
	"bytes"
	"strings"
	"testing"
)

func buildSnapshotDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if _, err := db.LoadDataset("counties", Counties(64, 501)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_idx", "counties", RTree,
		IndexOptions{Fanout: 16, InteriorEffort: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_qt", "counties", Quadtree,
		IndexOptions{TilingLevel: 6, Bounds: World}); err != nil {
		t.Fatal(err)
	}
	misc, err := db.CreateTable("misc", []Column{
		{Name: "k", Type: TInt64},
		{Name: "v", Type: TString},
		{Name: "b", Type: TBytes},
		{Name: "f", Type: TFloat64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := misc.Insert(Int(1), Str("one"), Bytes([]byte{1, 2}), Float(1.5)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := buildSnapshotDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tables and row counts survive.
	for _, name := range []string{"counties", "misc"} {
		orig, _ := db.Table(name)
		got, err := restored.Table(name)
		if err != nil {
			t.Fatalf("restored table %q: %v", name, err)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("table %q: %d rows, want %d", name, got.Len(), orig.Len())
		}
	}
	// Index catalogue survives with parameters.
	metas, err := restored.IndexMetadata()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Metadata{}
	for _, m := range metas {
		byName[m.IndexName] = m
	}
	if m := byName["counties_idx"]; m.Kind != RTree || m.Fanout != 16 || m.InteriorEffort != 2 {
		t.Fatalf("rtree metadata lost: %+v", m)
	}
	if m := byName["counties_qt"]; m.Kind != Quadtree || m.TilingLevel != 6 || m.Bounds != World {
		t.Fatalf("quadtree metadata lost: %+v", m)
	}
	// Queries agree between original and restored databases.
	window := MustRect(100, 100, 400, 400)
	origHits, err := db.Relate("counties", "counties_idx", window, "anyinteract")
	if err != nil {
		t.Fatal(err)
	}
	gotHits, err := restored.Relate("counties", "counties_idx", window, "anyinteract")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHits) != len(origHits) {
		t.Fatalf("restored query: %d hits, want %d", len(gotHits), len(origHits))
	}
	// Joins agree too.
	c1, err := db.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c1.Collect()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := restored.SpatialJoin("counties", "counties_idx", "counties", "counties_idx", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("restored join: %d pairs, want %d", len(p2), len(p1))
	}
	// The misc row content survives.
	misc, _ := restored.Table("misc")
	var row Row
	misc.Scan(func(_ RowID, r Row) bool { row = r; return false })
	if row[0].I != 1 || row[1].S != "one" || string(row[2].B) != "\x01\x02" || row[3].F != 1.5 {
		t.Fatalf("misc row corrupted: %v", row)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	db := buildSnapshotDB(t)
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots of the same database differ")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(strings.NewReader(""), 0); err == nil {
		t.Errorf("empty input accepted")
	}
	if _, err := Restore(strings.NewReader("NOTASNAP"), 0); err == nil {
		t.Errorf("bad magic accepted")
	}
	// Truncated snapshot.
	db := buildSnapshotDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), 0); err == nil {
		t.Errorf("truncated snapshot accepted")
	}
	// Trailing garbage.
	garbage := append(buf.Bytes(), 0xFF)
	if _, err := Restore(bytes.NewReader(garbage), 0); err == nil {
		t.Errorf("trailing garbage accepted")
	}
}
