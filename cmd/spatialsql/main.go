// Command spatialsql is an interactive SQL shell over the spatial
// engine, accepting exactly the statement forms used in the paper:
//
//	CREATE TABLE cities (id INT, name VARCHAR, geom GEOMETRY);
//	INSERT INTO cities VALUES (1, 'springfield', 'POLYGON ((10 10, 14 10, 14 14, 10 14, 10 10))');
//	CREATE INDEX cities_idx ON cities(geom) INDEXTYPE IS RTREE PARALLEL 2;
//	SELECT name FROM cities WHERE sdo_relate(geom, 'POINT (12 12)', 'mask=contains') = 'TRUE';
//	SELECT count(*) FROM TABLE(spatial_join('cities','geom','cities','geom','anyinteract', 2));
//
// Meta commands: \load <counties|stars|blockgroups> <n> [seed] creates
// and fills a table from a synthetic dataset; \tables lists tables from
// the index metadata; \metrics dumps the telemetry registry; \trace
// on|off prints a span trace after every query; \q quits. Statements
// may span lines and end with a semicolon. A file of statements can be
// piped on stdin.
//
// With -connect host:port the shell runs against a remote spatialserverd
// instead of an embedded database: statements travel over the wire
// protocol and SELECT row sources stream back in fetch batches (printed
// incrementally), so a huge join never materialises on either side.
// Remote meta commands: \stats prints server statistics with latency
// histogram summaries; \metrics dumps the server's full metric
// snapshot; \batch <n> sets the fetch batch size; \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialtf"
	"spatialtf/internal/sqlmini"
	"spatialtf/internal/telemetry"
	"spatialtf/internal/wire"
)

// shellTelemetry is the local shell's observability: a live registry
// over the embedded database plus a tracer whose slow log writes to
// stderr. \trace on sets the threshold to zero (trace every join);
// \trace off back to disabled.
type shellTelemetry struct {
	reg     *spatialtf.TelemetryRegistry
	tracer  *spatialtf.Tracer
	tracing bool
}

// attachTelemetry enables a fresh registry + tracer on db (called at
// startup and again after \restore swaps the database).
func attachTelemetry(db *spatialtf.DB) *shellTelemetry {
	st := &shellTelemetry{reg: spatialtf.NewTelemetryRegistry()}
	db.EnableTelemetry(st.reg)
	st.tracer = telemetry.NewTracer(st.reg, -1, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	db.SetTracer(st.tracer)
	return st
}

func main() {
	connect := flag.String("connect", "", "run against a remote server at host:port instead of an embedded database")
	flag.Parse()
	if *connect != "" {
		if err := remoteShell(*connect); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}
	eng := sqlmini.NewEngine()
	st := attachTelemetry(eng.DB())
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isatty()
	if interactive {
		fmt.Println("spatialtf SQL shell — \\q to quit, \\load <dataset> <n> to load data, \\metrics, \\trace on|off")
	}
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(eng, &st, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmtText := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if stmtText != "" {
				runStatement(eng, stmtText)
			}
		}
		prompt()
	}
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		runStatement(eng, rest)
	}
}

func runStatement(eng *sqlmini.Engine, sql string) {
	t0 := time.Now()
	res, err := eng.Execute(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Print(res.Format())
	fmt.Printf("elapsed: %s\n", time.Since(t0).Round(time.Microsecond))
}

// meta handles backslash commands; returns false to quit.
func meta(eng *sqlmini.Engine, st **shellTelemetry, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\metrics":
		printPoints((*st).reg.Snapshot())
	case "\\trace":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(os.Stderr, "usage: \\trace on|off")
			return true
		}
		if fields[1] == "on" {
			(*st).tracer.SetThreshold(0) // log a span trace for every query
			(*st).tracing = true
			fmt.Println("tracing on: span traces print to stderr after each query")
		} else {
			(*st).tracer.SetThreshold(-1)
			(*st).tracing = false
			fmt.Println("tracing off")
		}
	case "\\tables":
		metas, err := eng.DB().IndexMetadata()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		if len(metas) == 0 {
			fmt.Println("(no spatial indexes; tables without indexes are not listed)")
		}
		for _, m := range metas {
			fmt.Printf("%s.%s indexed by %s (%s)\n", m.TableName, m.ColumnName, m.IndexName, m.Kind)
		}
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\save <file>")
			return true
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		err = eng.DB().Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		fmt.Printf("database saved to %s\n", fields[1])
	case "\\restore":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\restore <file>")
			return true
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		db, err := spatialtf.Restore(f, 0)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		*eng = *sqlmini.NewEngineOn(db)
		// The restore swapped the database out from under the registry;
		// re-attach a fresh one and carry the tracing toggle over.
		tracing := (*st).tracing
		*st = attachTelemetry(eng.DB())
		if tracing {
			(*st).tracer.SetThreshold(0)
			(*st).tracing = true
		}
		fmt.Printf("database restored from %s\n", fields[1])
	case "\\load":
		if len(fields) < 3 {
			fmt.Fprintln(os.Stderr, "usage: \\load <counties|stars|blockgroups> <n> [seed]")
			return true
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad count %q\n", fields[2])
			return true
		}
		seed := int64(1)
		if len(fields) > 3 {
			s, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad seed %q\n", fields[3])
				return true
			}
			seed = s
		}
		var ds spatialtf.Dataset
		switch fields[1] {
		case "counties":
			ds = spatialtf.Counties(n, seed)
		case "stars":
			ds = spatialtf.Stars(n, seed)
		case "blockgroups":
			ds = spatialtf.BlockGroups(n, seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", fields[1])
			return true
		}
		t0 := time.Now()
		if _, err := eng.DB().LoadDataset(fields[1], ds); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		fmt.Printf("loaded %d rows into table %s in %s\n", n, fields[1], time.Since(t0).Round(time.Millisecond))
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", fields[0])
	}
	return true
}

// remoteShell runs the REPL against a spatialserverd at addr.
func remoteShell(addr string) error {
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	interactive := isatty()
	if interactive {
		fmt.Printf("spatialtf SQL shell — connected to %s; \\q to quit, \\stats for server stats, \\metrics for the full snapshot\n", addr)
	}
	batch := 0 // 0 = server default
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !remoteMeta(cli, trimmed, &batch) {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmtText := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if stmtText != "" {
				runRemoteStatement(cli, stmtText, batch)
			}
		}
		prompt()
	}
	if rest := strings.TrimSpace(buf.String()); rest != "" {
		runRemoteStatement(cli, rest, batch)
	}
	return nil
}

// runRemoteStatement executes one statement over the wire, streaming
// cursor batches to stdout as they arrive.
func runRemoteStatement(cli *wire.Client, sql string, batch int) {
	t0 := time.Now()
	res, err := cli.Query(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if res.Cursor == nil {
		fmt.Print(res.Format())
		fmt.Printf("elapsed: %s\n", time.Since(t0).Round(time.Microsecond))
		return
	}
	cur := res.Cursor
	defer cur.Close()
	cols := cur.Columns()
	for i, c := range cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Print(c.Name)
	}
	fmt.Println()
	n := 0
	for {
		rows, done, err := cur.Fetch(batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		for _, row := range rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print("  ")
				}
				s := v.String()
				if len(s) > 48 {
					s = s[:45] + "..."
				}
				fmt.Print(s)
			}
			fmt.Println()
			n++
		}
		if done {
			break
		}
	}
	fmt.Printf("(%d rows)\nelapsed: %s\n", n, time.Since(t0).Round(time.Microsecond))
}

// remoteMeta handles backslash commands in connect mode; returns false
// to quit.
func remoteMeta(cli *wire.Client, cmd string, batch *int) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\stats":
		s, err := cli.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		fmt.Printf("connections: %d active / %d accepted / %d rejected\n",
			s.ConnsActive, s.ConnsAccepted, s.ConnsRejected)
		fmt.Printf("cursors:     %d open / %d opened\n", s.CursorsOpen, s.CursorsOpened)
		fmt.Printf("queries:     %d (%d errors)\n", s.Queries, s.Errors)
		mean := time.Duration(0)
		if s.Fetches > 0 {
			mean = time.Duration(s.FetchNanos / s.Fetches)
		}
		fmt.Printf("streaming:   %d rows over %d fetches (mean fetch %s)\n",
			s.RowsStreamed, s.Fetches, mean.Round(time.Microsecond))
		fmt.Printf("geom cache:  %d hits / %d misses, %d entries (%d bytes)\n",
			s.GeomCacheHits, s.GeomCacheMisses, s.GeomCacheEntries, s.GeomCacheBytes)
		// Histogram summaries ride on the metrics frame; a pre-metrics
		// server answers it with an error, in which case the basic stats
		// above are all there is.
		pts, err := cli.Metrics()
		if err != nil {
			return true
		}
		for _, p := range pts {
			if p.Kind != telemetry.KindHistogram || p.Count == 0 {
				continue
			}
			fmt.Printf("%-30s %s\n", p.Name+":", histSummary(p))
		}
	case "\\metrics":
		pts, err := cli.Metrics()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		printPoints(pts)
	case "\\batch":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\batch <rows> (0 = server default)")
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad batch size %q\n", fields[1])
			return true
		}
		*batch = n
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (remote mode supports \\q, \\stats, \\metrics, \\batch)\n", fields[0])
	}
	return true
}

// printPoints renders a metrics snapshot as a compact table: counters
// and gauges one per line, histograms with count/mean/quantiles.
func printPoints(pts []telemetry.Point) {
	for _, p := range pts {
		switch p.Kind {
		case telemetry.KindHistogram:
			fmt.Printf("%-34s %s\n", p.Name, histSummary(p))
		default:
			fmt.Printf("%-34s %v\n", p.Name, p.Value)
		}
	}
}

// histSummary formats one histogram point as count, mean and estimated
// p50/p99 (linear interpolation within buckets).
func histSummary(p telemetry.Point) string {
	if p.Count == 0 {
		return "count=0"
	}
	mean := p.Sum / float64(p.Count)
	return fmt.Sprintf("count=%d mean=%s p50=%s p99=%s",
		p.Count, histUnit(p.Name, mean),
		histUnit(p.Name, p.Quantile(0.5)), histUnit(p.Name, p.Quantile(0.99)))
}

// histUnit renders a histogram sample in its natural unit: *_seconds
// metrics as durations, everything else as a bare number.
func histUnit(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// isatty reports whether stdin looks interactive (best effort, stdlib
// only).
func isatty() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
