// Command spatialrouterd is the cluster query router: it fronts N
// spatialserverd shards with the exact wire protocol of a single node,
// so spatialsql -connect works unchanged against a whole cluster.
//
// The shard map — world bounds, grid shape, replication margin, shard
// addresses — lives in a CRC-tailed manifest. Point the router at an
// existing manifest, or create one on first boot:
//
//	spatialrouterd -addr 127.0.0.1:7900 -manifest cluster.stf \
//	    -shards 127.0.0.1:7901,127.0.0.1:7902,127.0.0.1:7903 \
//	    -bounds 0,0,1000,1000 -grid 8x8 -margin 10
//
// Reads scatter to the owning shards as scoped queries and merge
// through a parallel table function; writes replicate by the shard
// map. -on-shard-loss picks what a lost shard does to in-flight reads:
// "fail" (default) fails the query, "partial" streams the surviving
// shards and ends the stream with a typed partial-result error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spatialtf"
	"spatialtf/internal/cluster"
	"spatialtf/internal/geom"
	"spatialtf/internal/server"
	"spatialtf/internal/telemetry"
)

// clusterBackend adapts the coordinator to the server's Backend
// contract (the adapter lives here because Go interface satisfaction
// needs the exact return type, and the cluster package returns its
// concrete *cluster.Session).
type clusterBackend struct{ co *cluster.Coordinator }

func (b clusterBackend) NewSession() server.Session { return b.co.NewSession() }

func (b clusterBackend) MetricsSnapshot() []telemetry.Point { return b.co.MetricsSnapshot() }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7900", "listen address")
		manifest     = flag.String("manifest", "", "shard-map manifest path (required)")
		shards       = flag.String("shards", "", "comma-separated shard addresses; creates the manifest when it does not exist")
		bounds       = flag.String("bounds", "0,0,1000,1000", "world bounds minx,miny,maxx,maxy for a new manifest")
		grid         = flag.String("grid", "8x8", "ownership grid COLSxROWS for a new manifest")
		margin       = flag.Float64("margin", 0, "replication margin (largest join distance) for a new manifest")
		dialTimeout  = flag.Duration("dial-timeout", 5*time.Second, "per-shard dial timeout (0 = none)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-shard reply timeout (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-shard request-write timeout (0 = none)")
		retries      = flag.Int("retries", 2, "retry count for failed shard dials/requests")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "sleep before the first retry, doubling per attempt")
		onShardLoss  = flag.String("on-shard-loss", cluster.LossFail, "lost-shard policy for streaming reads (fail|partial)")
		fetchBatch   = flag.Int("shard-batch", 0, "rows per remote fetch from each shard (0 = shard default)")
		maxConns     = flag.Int("max-conns", 64, "concurrent client connection limit")
		maxCursors   = flag.Int("max-cursors", 8, "open cursor limit per connection")
		batch        = flag.Int("batch", 256, "default client fetch batch size (rows)")
		maxBatch     = flag.Int("max-batch", 4096, "largest fetch batch a client may request")
		maxRows      = flag.Int64("max-rows", 0, "per-query row limit (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query time limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain limit")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address for /metrics and /debug/pprof/ (empty = disabled)")
		slowQuery    = flag.Duration("slow-query", 0, "log a scatter/merge span trace for queries at least this slow (0 = off)")
	)
	flag.Parse()
	log.SetPrefix("spatialrouterd: ")
	log.SetFlags(log.LstdFlags)

	m, err := loadOrCreateMap(*manifest, *shards, *bounds, *grid, *margin)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shard map: %d shards, %dx%d grid over (%g,%g)-(%g,%g), margin %g",
		m.NShards(), m.Cols, m.Rows, m.Bounds.MinX, m.Bounds.MinY, m.Bounds.MaxX, m.Bounds.MaxY, m.Margin)

	reg := spatialtf.NewTelemetryRegistry()
	co, err := cluster.New(m, cluster.Options{
		DialTimeout:  *dialTimeout,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		Retries:      *retries,
		RetryBackoff: *retryBackoff,
		OnShardLoss:  *onShardLoss,
		FetchBatch:   *fetchBatch,
		Registry:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.NewWith(clusterBackend{co: co}, server.Config{
		MaxConns:          *maxConns,
		MaxCursorsPerConn: *maxCursors,
		DefaultBatch:      *batch,
		MaxBatch:          *maxBatch,
		MaxRowsPerQuery:   *maxRows,
		QueryTimeout:      *queryTimeout,
		Telemetry:         reg,
		SlowQuery:         *slowQuery,
	})
	// Scatter/merge spans land on the serving layer's tracer so the
	// router's slow log shows where a cluster query spent its time.
	co.SetTracer(srv.Tracer())

	var httpSrv *http.Server
	var httpWG sync.WaitGroup
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		httpWG.Add(1)
		go func() {
			defer httpWG.Done()
			log.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)", *metricsAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("received %s; draining connections (limit %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if httpSrv != nil {
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics server shutdown: %v", err)
			}
		}
		if err := co.Close(); err != nil {
			log.Printf("shard connections close: %v", err)
		}
	}()

	log.Printf("routing for %d shards on %s", m.NShards(), *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	httpWG.Wait()
	s := srv.Stats().Snapshot()
	log.Printf("routed %d queries, %d rows streamed over %d fetches, %d connections",
		s.Queries, s.RowsStreamed, s.Fetches, s.ConnsAccepted)
}

// loadOrCreateMap loads the manifest, or creates it from the -shards/
// -bounds/-grid/-margin flags when the file does not exist yet.
func loadOrCreateMap(path, shards, bounds, grid string, margin float64) (*cluster.ShardMap, error) {
	if path == "" {
		return nil, fmt.Errorf("-manifest is required")
	}
	if _, err := os.Stat(path); err == nil {
		m, err := cluster.LoadShardMap(path)
		if err != nil {
			return nil, err
		}
		if shards != "" {
			return nil, fmt.Errorf("manifest %s already exists; drop -shards (the manifest is authoritative)", path)
		}
		return m, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if shards == "" {
		return nil, fmt.Errorf("manifest %s does not exist; pass -shards to create it", path)
	}
	b, err := parseBounds(bounds)
	if err != nil {
		return nil, err
	}
	cols, rows, err := parseGrid(grid)
	if err != nil {
		return nil, err
	}
	m := &cluster.ShardMap{
		Bounds: b,
		Cols:   cols,
		Rows:   rows,
		Margin: margin,
		Shards: strings.Split(shards, ","),
	}
	if err := m.Save(path); err != nil {
		return nil, fmt.Errorf("create manifest %s: %w", path, err)
	}
	log.Printf("manifest %s created", path)
	return m, nil
}

// parseBounds parses "minx,miny,maxx,maxy".
func parseBounds(s string) (geom.MBR, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.MBR{}, fmt.Errorf("bad -bounds %q (want minx,miny,maxx,maxy)", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.MBR{}, fmt.Errorf("bad -bounds %q: %w", s, err)
		}
		v[i] = f
	}
	return geom.MBR{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

// parseGrid parses "COLSxROWS".
func parseGrid(s string) (cols, rows int, err error) {
	c, r, ok := strings.Cut(strings.ToLower(s), "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad -grid %q (want COLSxROWS)", s)
	}
	cols, err = strconv.Atoi(strings.TrimSpace(c))
	if err == nil {
		rows, err = strconv.Atoi(strings.TrimSpace(r))
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -grid %q: %w", s, err)
	}
	return cols, rows, nil
}
