package main

import (
	"bytes"
	"go/ast"
	"os"
	"strings"
	"testing"

	"spatialtf/internal/analysis"
)

// repoRoot is the module root relative to this package directory; the
// dump helpers take a chdir so the tests never mutate the process cwd.
const repoRoot = "../.."

// capture runs fn with os.Stdout redirected to a pipe and returns what
// it printed. The dump helpers write straight to os.Stdout (they feed
// `spatiallint -… | dot`), so the tests intercept at the fd level.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.String()
	}()
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	return <-done
}

func TestListRules(t *testing.T) {
	var buf bytes.Buffer
	listRules(&buf)
	out := buf.String()
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("rule %s missing from -rules output:\n%s", a.Name, out)
		}
	}
	if got, want := strings.Count(out, "\n"), len(analysis.Analyzers()); got != want {
		t.Errorf("-rules printed %d lines, want %d", got, want)
	}
}

func TestDumpCFG(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = dumpCFG(repoRoot, "Grid.ColOf", []string{"./internal/sjoin"})
	})
	if status != 0 {
		t.Fatalf("dumpCFG status %d", status)
	}
	for _, want := range []string{"digraph", "Grid.ColOf", "entry", "exit", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("-cfg-debug output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpCFGUnknownFunc(t *testing.T) {
	var status int
	capture(t, func() {
		status = dumpCFG(repoRoot, "NoSuchFunction", []string{"./internal/geom"})
	})
	if status != 2 {
		t.Errorf("dumpCFG for unknown function: status %d, want 2", status)
	}
}

func TestDumpLockGraph(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = dumpModuleDot(repoRoot, []string{"./internal/pager"}, analysis.LockGraphDot)
	})
	if status != 0 {
		t.Fatalf("dumpModuleDot status %d", status)
	}
	if !strings.Contains(out, "digraph lockorder") {
		t.Errorf("-lockgraph output is not the lock-order digraph:\n%s", out)
	}
}

func TestDumpAllocGraph(t *testing.T) {
	var status int
	out := capture(t, func() {
		status = dumpModuleDot(repoRoot, []string{"./internal/pager"}, analysis.AllocGraphDot)
	})
	if status != 0 {
		t.Fatalf("dumpModuleDot status %d", status)
	}
	// The pager's pin path is a seeded hot root with a known allocating
	// callee; both ends of that edge must be in the graph.
	for _, want := range []string{"digraph hotalloc", "Store.pin", "Store.loadLocked", "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("-allocgraph output missing %q:\n%s", want, out)
		}
	}
}

func TestDeclName(t *testing.T) {
	cases := []struct {
		recv string
		want string
	}{
		{"", "F"},
		{"(t T)", "T.F"},
		{"(t *T)", "T.F"},
	}
	for _, c := range cases {
		fd := &ast.FuncDecl{Name: ast.NewIdent("F")}
		switch c.recv {
		case "(t T)":
			fd.Recv = &ast.FieldList{List: []*ast.Field{{Type: ast.NewIdent("T")}}}
		case "(t *T)":
			fd.Recv = &ast.FieldList{List: []*ast.Field{{Type: &ast.StarExpr{X: ast.NewIdent("T")}}}}
		}
		if got := declName(fd); got != c.want {
			t.Errorf("declName(recv %q) = %q, want %q", c.recv, got, c.want)
		}
	}
}
