// Command spatiallint runs the project's static analyzer suite
// (internal/analysis) over Go packages: the concurrency and cursor
// contracts the compiler cannot check — pin pairing, cursor close
// discipline, lock-vs-blocking hygiene, unchecked wire errors, and
// float equality on coordinates. See DESIGN.md §10.
//
// Usage:
//
//	spatiallint [flags] [packages]
//
//	-C dir        run as if started in dir
//	-disable a,b  disable the named analyzers
//	-json         emit findings as a JSON array instead of text
//	-list         print the analyzers and exit
//
// Packages default to ./... . Exit status: 0 clean, 1 findings,
// 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spatialtf/internal/analysis"
)

func main() {
	var (
		chdir    = flag.String("C", "", "run as if started in `dir`")
		disable  = flag.String("disable", "", "comma-separated `rules` to disable")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		listOnly = flag.Bool("list", false, "print the analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if analysis.ByName(name) == nil {
			fmt.Fprintf(os.Stderr, "spatiallint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		disabled[name] = true
	}
	var suite []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if !disabled[a.Name] {
			suite = append(suite, a)
		}
	}

	pkgs, _, err := analysis.Load(*chdir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, suite)

	// Report paths relative to the working directory when possible.
	base := *chdir
	if base == "" {
		base, _ = os.Getwd()
	}
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "spatiallint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "spatiallint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
