// Command spatiallint runs the project's static analyzer suite
// (internal/analysis) over Go packages: the concurrency and cursor
// contracts the compiler cannot check — pin pairing, cursor close
// discipline, lock-vs-blocking hygiene (interprocedural), lock-order
// deadlock detection, atomic/plain mixed field access, unchecked wire
// errors, float equality on coordinates, unbounded decoded allocation
// sizes, unjoined goroutines, and discarded release funcs. See
// DESIGN.md §10–§11 and §15.
//
// Usage:
//
//	spatiallint [flags] [packages]
//
//	-C dir        run as if started in dir
//	-disable a,b  disable the named analyzers
//	-json         emit findings as a JSON array instead of text
//	-rules        print the registered rules with descriptions and exit
//	              (-list is an alias)
//	-cfg-debug f  print the control-flow graph of function f (Graphviz
//	              dot; f is "Name" or "Type.Method") and exit
//	-lockgraph    print the module-wide lock-order graph (Graphviz dot,
//	              cycle edges in red) and exit
//	-allocgraph   print the hot-path allocation graph (Graphviz dot,
//	              hot roots in red) and exit
//
// Packages default to ./... . Exit status: 0 clean, 1 findings,
// 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spatialtf/internal/analysis"
	"spatialtf/internal/analysis/cfg"
)

func main() {
	var (
		chdir    = flag.String("C", "", "run as if started in `dir`")
		disable  = flag.String("disable", "", "comma-separated `rules` to disable")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		listOnly = flag.Bool("list", false, "print the registered rules with descriptions and exit")
		rules    = flag.Bool("rules", false, "alias for -list")
		cfgDebug = flag.String("cfg-debug", "", "print the CFG of `func` (\"Name\" or \"Type.Method\") as Graphviz dot and exit")
		lockDot  = flag.Bool("lockgraph", false, "print the module lock-order graph as Graphviz dot and exit")
		allocDot = flag.Bool("allocgraph", false, "print the hot-path allocation graph as Graphviz dot and exit")
	)
	flag.Parse()

	if *listOnly || *rules {
		listRules(os.Stdout)
		return
	}

	if *cfgDebug != "" {
		os.Exit(dumpCFG(*chdir, *cfgDebug, flag.Args()))
	}

	if *lockDot {
		os.Exit(dumpModuleDot(*chdir, flag.Args(), analysis.LockGraphDot))
	}

	if *allocDot {
		os.Exit(dumpModuleDot(*chdir, flag.Args(), analysis.AllocGraphDot))
	}

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if analysis.ByName(name) == nil {
			fmt.Fprintf(os.Stderr, "spatiallint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		disabled[name] = true
	}
	var suite []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if !disabled[a.Name] {
			suite = append(suite, a)
		}
	}

	pkgs, _, err := analysis.Load(*chdir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, suite)

	// Report paths relative to the working directory when possible.
	base := *chdir
	if base == "" {
		base, _ = os.Getwd()
	}
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "spatiallint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "spatiallint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// dumpCFG builds and prints the control-flow graph of the named
// function — "Name" for package functions, "Type.Method" for methods —
// searching every loaded package. Returns the process exit status.
func dumpCFG(chdir, name string, patterns []string) int {
	pkgs, _, err := analysis.Load(chdir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || declName(fd) != name {
					continue
				}
				found = true
				g := cfg.Build(fd.Body)
				fmt.Print(cfg.Dot(g, pkg.Fset, pkg.Path+"."+name))
			}
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "spatiallint: no function %q in the loaded packages\n", name)
		return 2
	}
	return 0
}

// listRules prints every registered rule with its one-line description
// (the -rules / -list inventory).
func listRules(w io.Writer) {
	for _, a := range analysis.Analyzers() {
		fmt.Fprintf(w, "%-16s %s\n", a.Name, a.Doc)
	}
}

// dumpModuleDot loads the packages, builds the module summary, and
// prints one of the module-wide Graphviz renderings (-lockgraph,
// -allocgraph).
func dumpModuleDot(chdir string, patterns []string, render func(*analysis.Module) string) int {
	pkgs, _, err := analysis.Load(chdir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		return 2
	}
	fmt.Print(render(analysis.BuildModule(pkgs)))
	return 0
}

// declName renders a FuncDecl's name as the -cfg-debug flag spells it.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
