// Command spatialbench regenerates the tables and figures of "Spatial
// Processing using Oracle Table Functions" (ICDE 2003) on the synthetic
// stand-in datasets.
//
// Usage:
//
//	spatialbench -table 1            # Table 1 (counties distance sweep)
//	spatialbench -table 2            # Table 2 (star self-join scaling)
//	spatialbench -table 3            # Table 3 (parallel index creation)
//	spatialbench -figure 1           # Figure 1 (subtree pair grid)
//	spatialbench -figure 2           # Figure 2 (tessellation pipeline)
//	spatialbench -all                # everything
//
// The default -scale 0.1 runs each experiment at a tenth of the paper's
// dataset sizes (minutes on a laptop); -scale 1 uses the full 3230 /
// 250K / 230K row counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spatialtf/internal/bench"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate this paper table (1, 2 or 3)")
		figure  = flag.Int("figure", 0, "regenerate this paper figure (1 or 2)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		scale   = flag.Float64("scale", 0.1, "dataset scale relative to the paper (1 = full size)")
		seed    = flag.Int64("seed", 1, "dataset generator seed")
		workers = flag.Int("workers", 2, "parallel degree for the Table 2 parallel join column")
	)
	flag.Parse()
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		fmt.Printf("=== %s (scale %.2g) ===\n", name, *scale)
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "spatialbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *all || *table == 1 {
		run("Table 1", func() error {
			opt := bench.DefaultTable1Options()
			opt.Counties = scaled(opt.Counties, *scale)
			opt.Seed = *seed
			rows, err := bench.RunTable1(opt)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable1(rows))
			return nil
		})
	}
	if *all || *table == 2 {
		run("Table 2", func() error {
			opt := bench.DefaultTable2Options()
			for i := range opt.Sizes {
				opt.Sizes[i] = scaled(opt.Sizes[i], *scale)
			}
			opt.Seed = *seed
			opt.Workers2 = *workers
			rows, err := bench.RunTable2(opt)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable2(rows))
			return nil
		})
	}
	if *all || *table == 3 {
		run("Table 3", func() error {
			opt := bench.DefaultTable3Options()
			opt.BlockGroups = scaled(opt.BlockGroups, *scale)
			opt.Seed = *seed
			rows, err := bench.RunTable3(opt)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable3(rows))
			return nil
		})
	}
	if *all || *figure == 1 {
		run("Figure 1", func() error {
			r, err := bench.RunFigure1(scaled(20000, *scale), *seed)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure1(r))
			return nil
		})
	}
	if *all || *figure == 2 {
		run("Figure 2", func() error {
			r, err := bench.RunFigure2(scaled(5000, *scale), 4, *seed, 8)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure2(r))
			return nil
		})
	}
}

// scaled applies the scale factor with a sane floor.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 25 {
		v = 25
	}
	return v
}
