// Command datagen emits a synthetic dataset as one WKT geometry per
// line, for inspection or for loading into other tools.
//
// Usage:
//
//	datagen -dataset counties -n 3230 -seed 1 > counties.wkt
//	datagen -dataset stars -n 1000 -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"spatialtf/internal/datagen"
	"spatialtf/internal/geom"
)

func main() {
	var (
		name  = flag.String("dataset", "counties", "dataset: counties, stars or blockgroups")
		n     = flag.Int("n", 100, "number of geometries")
		seed  = flag.Int64("seed", 1, "generator seed")
		stats = flag.Bool("stats", false, "print summary statistics instead of WKT")
	)
	flag.Parse()

	var ds datagen.Dataset
	switch *name {
	case "counties":
		ds = datagen.Counties(*n, *seed)
	case "stars":
		ds = datagen.Stars(*n, *seed)
	case "blockgroups":
		ds = datagen.BlockGroups(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if *stats {
		totalArea := 0.0
		maxV, minV := 0, 1<<31
		for _, g := range ds.Geoms {
			totalArea += g.Area()
			v := g.NumVertices()
			if v > maxV {
				maxV = v
			}
			if v < minV {
				minV = v
			}
		}
		fmt.Printf("dataset:        %s\n", ds.Name)
		fmt.Printf("geometries:     %d\n", len(ds.Geoms))
		fmt.Printf("total vertices: %d (min %d, max %d per geometry)\n", ds.TotalVertices(), minV, maxV)
		fmt.Printf("total area:     %.1f (%.2f%% of the world)\n", totalArea, 100*totalArea/ds.Bounds.Area())
		fmt.Printf("bounds:         %v\n", ds.Bounds)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	for _, g := range ds.Geoms {
		fmt.Fprintln(w, geom.MarshalWKT(g))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
