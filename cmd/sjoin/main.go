// Command sjoin runs a spatial join over two generated datasets and
// prints result counts and timings — a CLI front end for the
// spatial_join table function.
//
// Usage:
//
//	sjoin -a counties:400 -b counties:400 -mask anyinteract
//	sjoin -a stars:5000 -b stars:5000 -distance 2 -parallel 4
//	sjoin -a stars:5000 -b stars:5000 -strategy nestedloop
//	sjoin -a counties:100 -b stars:2000 -print 10
//
// Dataset specs are name:count with name one of counties, stars,
// blockgroups.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialtf"
)

func main() {
	var (
		aSpec    = flag.String("a", "counties:400", "first dataset as name:count")
		bSpec    = flag.String("b", "counties:400", "second dataset as name:count")
		mask     = flag.String("mask", "anyinteract", "relate mask (anyinteract, touch, overlap, ...)")
		distance = flag.Float64("distance", 0, "within-distance predicate instead of the mask")
		parallel = flag.Int("parallel", 1, "parallel table-function instances")
		strategy = flag.String("strategy", "index", "join strategy: index or nestedloop")
		seed     = flag.Int64("seed", 1, "generator seed")
		printN   = flag.Int("print", 0, "print the first N result pairs")
	)
	flag.Parse()

	db := spatialtf.Open()
	load := func(label, spec string) string {
		ds, err := parseDataset(spec, *seed)
		if err != nil {
			fatal(err)
		}
		name := fmt.Sprintf("%s_%s", label, ds.Name)
		if _, err := db.LoadDataset(name, ds); err != nil {
			fatal(err)
		}
		if _, err := db.CreateIndex(name+"_idx", name, spatialtf.RTree, spatialtf.IndexOptions{}); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d rows of %s loaded and R-tree indexed\n", name, len(ds.Geoms), ds.Name)
		return name
	}
	ta := load("a", *aSpec)
	tb := load("b", *bSpec)

	opt := spatialtf.JoinOptions{Mask: *mask, Distance: *distance, Parallel: *parallel}
	t0 := time.Now()
	var pairs []spatialtf.Pair
	var err error
	switch *strategy {
	case "nestedloop":
		pairs, err = db.NestedLoopJoin(ta, ta+"_idx", tb, tb+"_idx", opt)
	case "index":
		var cur *spatialtf.JoinCursor
		cur, err = db.SpatialJoin(ta, ta+"_idx", tb, tb+"_idx", opt)
		if err == nil {
			pairs, err = cur.Collect()
		}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)
	fmt.Printf("join (%s, mask=%s, distance=%g, parallel=%d): %d pairs in %s\n",
		*strategy, *mask, *distance, *parallel, len(pairs), elapsed.Round(time.Microsecond))

	if *printN > 0 {
		tabA, _ := db.Table(ta)
		tabB, _ := db.Table(tb)
		for i, p := range pairs {
			if i >= *printN {
				break
			}
			ra, _ := tabA.Fetch(p.A)
			rb, _ := tabB.Fetch(p.B)
			fmt.Printf("  %s <-> %s\n", ra[1].S, rb[1].S)
		}
	}
}

func parseDataset(spec string, seed int64) (spatialtf.Dataset, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return spatialtf.Dataset{}, fmt.Errorf("dataset spec %q is not name:count", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return spatialtf.Dataset{}, fmt.Errorf("dataset spec %q has bad count", spec)
	}
	switch parts[0] {
	case "counties":
		return spatialtf.Counties(n, seed), nil
	case "stars":
		return spatialtf.Stars(n, seed), nil
	case "blockgroups":
		return spatialtf.BlockGroups(n, seed), nil
	default:
		return spatialtf.Dataset{}, fmt.Errorf("unknown dataset %q (counties, stars, blockgroups)", parts[0])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sjoin: %v\n", err)
	os.Exit(1)
}
