// Command idxtool builds spatial indexes over a generated dataset and
// reports build statistics — a CLI front end for the paper's §5
// parallel index creation.
//
// Usage:
//
//	idxtool -dataset blockgroups:5000 -kind quadtree -level 8 -workers 1,2,4
//	idxtool -dataset counties:3230 -kind rtree -workers 1,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spatialtf/internal/datagen"
	"spatialtf/internal/idxbuild"
	"spatialtf/internal/quadtree"
)

func main() {
	var (
		dataset = flag.String("dataset", "blockgroups:2000", "dataset as name:count")
		kind    = flag.String("kind", "rtree", "index kind: rtree or quadtree")
		level   = flag.Int("level", 8, "quadtree tiling level")
		fanout  = flag.Int("fanout", 0, "rtree node fanout (0 = default)")
		workers = flag.String("workers", "1,2,4", "comma-separated parallel degrees to sweep")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	ds, err := parseDataset(*dataset, *seed)
	if err != nil {
		fatal(err)
	}
	tab, _, err := datagen.LoadTable(ds.Name, ds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %d rows, %d total vertices\n", ds.Name, tab.Len(), ds.TotalVertices())

	var sweep []int
	for _, s := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad workers list %q", *workers))
		}
		sweep = append(sweep, w)
	}

	fmt.Printf("%-10s %-12s %-12s %-12s %-10s\n", "workers", "total", "load", "build", "entries")
	var base float64
	for _, w := range sweep {
		var stats idxbuild.Stats
		switch *kind {
		case "rtree":
			tree, s, err := idxbuild.CreateRtree(tab, "geom", *fanout, w)
			if err != nil {
				fatal(err)
			}
			if err := tree.Validate(); err != nil {
				fatal(fmt.Errorf("built tree invalid: %w", err))
			}
			stats = s
		case "quadtree":
			grid, err := quadtree.NewGrid(ds.Bounds, *level)
			if err != nil {
				fatal(err)
			}
			_, s, err := idxbuild.CreateQuadtree(tab, "geom", grid, w)
			if err != nil {
				fatal(err)
			}
			stats = s
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		speed := ""
		if base == 0 {
			base = stats.Total.Seconds()
		} else if stats.Total.Seconds() > 0 {
			speed = fmt.Sprintf(" (%.2fx speedup)", base/stats.Total.Seconds())
		}
		fmt.Printf("%-10d %-12s %-12s %-12s %-10d%s\n",
			w,
			fmt.Sprintf("%.3fs", stats.Total.Seconds()),
			fmt.Sprintf("%.3fs", stats.LoadPhase.Seconds()),
			fmt.Sprintf("%.3fs", stats.BuildPhase.Seconds()),
			stats.Entries, speed)
	}
}

func parseDataset(spec string, seed int64) (datagen.Dataset, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return datagen.Dataset{}, fmt.Errorf("dataset spec %q is not name:count", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return datagen.Dataset{}, fmt.Errorf("dataset spec %q has bad count", spec)
	}
	switch parts[0] {
	case "counties":
		return datagen.Counties(n, seed), nil
	case "stars":
		return datagen.Stars(n, seed), nil
	case "blockgroups":
		return datagen.BlockGroups(n, seed), nil
	default:
		return datagen.Dataset{}, fmt.Errorf("unknown dataset %q", parts[0])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "idxtool: %v\n", err)
	os.Exit(1)
}
