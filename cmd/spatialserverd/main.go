// Command spatialserverd is the networked query server daemon: it loads
// a database snapshot (or synthesizes datasets), serves the wire
// protocol over TCP, and persists the database back to the snapshot on
// SIGTERM/SIGINT after draining in-flight cursors.
//
// Usage:
//
//	spatialserverd -addr 127.0.0.1:7878 -snapshot db.snap
//	spatialserverd -load counties:2000:1 -load stars:10000:2 -index rtree
//
// Connect with:
//
//	spatialsql -connect 127.0.0.1:7878
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spatialtf"
	"spatialtf/internal/server"
)

type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7878", "listen address")
		snapshot     = flag.String("snapshot", "", "snapshot file: restored at start if present, saved on shutdown")
		index        = flag.String("index", "rtree", "index kind built on -load tables (rtree|quadtree|none)")
		parallel     = flag.Int("parallel", 0, "parallel workers for restore/index builds")
		maxConns     = flag.Int("max-conns", 64, "concurrent connection limit")
		maxCursors   = flag.Int("max-cursors", 8, "open cursor limit per connection")
		batch        = flag.Int("batch", 256, "default fetch batch size (rows)")
		maxBatch     = flag.Int("max-batch", 4096, "largest fetch batch a client may request")
		maxRows      = flag.Int64("max-rows", 0, "per-query row limit (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query time limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain limit")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address for /metrics and /debug/pprof/ (empty = disabled)")
		slowQuery    = flag.Duration("slow-query", 0, "log a span trace for queries at least this slow (0 = off)")
		loads        loadList
	)
	flag.Var(&loads, "load", "dataset to load at start, as name:n[:seed] (repeatable; counties, stars or blockgroups)")
	flag.Parse()
	log.SetPrefix("spatialserverd: ")
	log.SetFlags(log.LstdFlags)

	db, err := openDB(*snapshot, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range loads {
		if err := loadDataset(db, spec, *index, *parallel); err != nil {
			log.Fatal(err)
		}
	}

	// One registry covers the whole process: the server's counters and
	// the database's join/cache instruments land on the same scrape.
	reg := spatialtf.NewTelemetryRegistry()
	db.EnableTelemetry(reg)
	srv := server.New(db, server.Config{
		MaxConns:          *maxConns,
		MaxCursorsPerConn: *maxCursors,
		DefaultBatch:      *batch,
		MaxBatch:          *maxBatch,
		MaxRowsPerQuery:   *maxRows,
		QueryTimeout:      *queryTimeout,
		Telemetry:         reg,
		SlowQuery:         *slowQuery,
	})

	// The observability endpoint runs on its own mux (never the default
	// one) so nothing else in the process can accidentally widen it.
	var httpSrv *http.Server
	var httpWG sync.WaitGroup
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		httpWG.Add(1)
		go func() {
			defer httpWG.Done()
			log.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)", *metricsAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("received %s; draining connections (limit %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if httpSrv != nil {
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics server shutdown: %v", err)
			}
		}
		if *snapshot != "" {
			if err := saveSnapshot(db, *snapshot); err != nil {
				log.Printf("snapshot save failed: %v", err)
			} else {
				log.Printf("database saved to %s", *snapshot)
			}
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	httpWG.Wait()
	s := srv.Stats().Snapshot()
	log.Printf("served %d queries, %d rows streamed over %d fetches, %d connections",
		s.Queries, s.RowsStreamed, s.Fetches, s.ConnsAccepted)
}

// openDB restores the snapshot if it exists, otherwise opens an empty
// database.
func openDB(path string, parallel int) (*spatialtf.DB, error) {
	if path == "" {
		return spatialtf.Open(), nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		log.Printf("snapshot %s not found; starting empty", path)
		return spatialtf.Open(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := spatialtf.Restore(f, parallel)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", path, err)
	}
	log.Printf("database restored from %s", path)
	return db, nil
}

// saveSnapshot writes the database atomically (temp file + rename).
func saveSnapshot(db *spatialtf.DB, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = db.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadDataset parses name:n[:seed] and loads it, indexing the geometry
// column per kind.
func loadDataset(db *spatialtf.DB, spec, kind string, parallel int) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("bad -load %q (want name:n[:seed])", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return fmt.Errorf("bad -load count %q", parts[1])
	}
	seed := int64(1)
	if len(parts) == 3 {
		seed, err = strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad -load seed %q", parts[2])
		}
	}
	var ds spatialtf.Dataset
	switch parts[0] {
	case "counties":
		ds = spatialtf.Counties(n, seed)
	case "stars":
		ds = spatialtf.Stars(n, seed)
	case "blockgroups":
		ds = spatialtf.BlockGroups(n, seed)
	default:
		return fmt.Errorf("unknown dataset %q", parts[0])
	}
	t0 := time.Now()
	if _, err := db.LoadDataset(parts[0], ds); err != nil {
		return err
	}
	opt := spatialtf.IndexOptions{Parallel: parallel}
	switch kind {
	case "rtree":
		_, err = db.CreateIndex(parts[0]+"_idx", parts[0], spatialtf.RTree, opt)
	case "quadtree":
		opt.Bounds = spatialtf.World
		opt.TilingLevel = 8
		_, err = db.CreateIndex(parts[0]+"_idx", parts[0], spatialtf.Quadtree, opt)
	case "none":
	default:
		return fmt.Errorf("unknown -index kind %q", kind)
	}
	if err != nil {
		return err
	}
	log.Printf("loaded %s (%d rows, index=%s) in %s", parts[0], n, kind, time.Since(t0).Round(time.Millisecond))
	return nil
}
