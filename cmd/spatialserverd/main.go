// Command spatialserverd is the networked query server daemon: it opens
// a durable data directory (or loads a snapshot, or synthesizes
// datasets) and serves the wire protocol over TCP.
//
// With -data-dir, the database lives in a paged store with a
// write-ahead log: every committed mutation survives a crash (per
// -wal-sync), restart recovers from WAL + checkpoint, and shutdown is a
// checkpoint — no snapshot rewrite. A -snapshot given alongside an
// empty -data-dir is imported once (migration); thereafter the data
// directory is authoritative.
//
// Without -data-dir, the database is in-memory and -snapshot keeps the
// old export/import persistence: restored at start, rewritten
// atomically on SIGTERM/SIGINT after draining in-flight cursors.
//
// Usage:
//
//	spatialserverd -addr 127.0.0.1:7878 -data-dir /var/lib/stf -wal-sync always
//	spatialserverd -addr 127.0.0.1:7878 -snapshot db.snap
//	spatialserverd -load counties:2000:1 -load stars:10000:2 -index rtree
//
// Connect with:
//
//	spatialsql -connect 127.0.0.1:7878
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spatialtf"
	"spatialtf/internal/server"
)

type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7878", "listen address")
		dataDir      = flag.String("data-dir", "", "durable data directory (page file + WAL); empty = in-memory")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy with -data-dir (always|batch|off)")
		poolPages    = flag.Int("pool-pages", 0, "buffer pool size in pages with -data-dir (0 = default)")
		checkpointMB = flag.Int64("checkpoint-mb", 0, "checkpoint once the WAL exceeds this many MiB (0 = default)")
		snapshot     = flag.String("snapshot", "", "snapshot file: restored (or imported into an empty -data-dir) at start; saved on shutdown in in-memory mode")
		index        = flag.String("index", "rtree", "index kind built on -load tables (rtree|quadtree|none)")
		parallel     = flag.Int("parallel", 0, "parallel workers for restore/index builds")
		maxConns     = flag.Int("max-conns", 64, "concurrent connection limit")
		maxCursors   = flag.Int("max-cursors", 8, "open cursor limit per connection")
		batch        = flag.Int("batch", 256, "default fetch batch size (rows)")
		maxBatch     = flag.Int("max-batch", 4096, "largest fetch batch a client may request")
		maxRows      = flag.Int64("max-rows", 0, "per-query row limit (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-query time limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain limit")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP address for /metrics and /debug/pprof/ (empty = disabled)")
		slowQuery    = flag.Duration("slow-query", 0, "log a span trace for queries at least this slow (0 = off)")
		loads        loadList
	)
	flag.Var(&loads, "load", "dataset to load at start, as name:n[:seed] (repeatable; counties, stars or blockgroups)")
	flag.Parse()
	log.SetPrefix("spatialserverd: ")
	log.SetFlags(log.LstdFlags)

	// One registry covers the whole process: the server's counters, the
	// database's join/cache instruments and (with -data-dir) the storage
	// engine's pool/WAL/checkpoint metrics land on the same scrape. It
	// must exist before the store opens so the engine can register.
	reg := spatialtf.NewTelemetryRegistry()
	db, err := openDB(*dataDir, *snapshot, *walSync, *poolPages, *checkpointMB, *parallel, reg)
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range loads {
		if err := loadDataset(db, spec, *index, *parallel); err != nil {
			log.Fatal(err)
		}
	}
	db.EnableTelemetry(reg)
	srv := server.New(db, server.Config{
		MaxConns:          *maxConns,
		MaxCursorsPerConn: *maxCursors,
		DefaultBatch:      *batch,
		MaxBatch:          *maxBatch,
		MaxRowsPerQuery:   *maxRows,
		QueryTimeout:      *queryTimeout,
		Telemetry:         reg,
		SlowQuery:         *slowQuery,
	})

	// The observability endpoint runs on its own mux (never the default
	// one) so nothing else in the process can accidentally widen it.
	var httpSrv *http.Server
	var httpWG sync.WaitGroup
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		httpWG.Add(1)
		go func() {
			defer httpWG.Done()
			log.Printf("metrics on http://%s/metrics (pprof on /debug/pprof/)", *metricsAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("received %s; draining connections (limit %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("forced shutdown: %v", err)
		}
		if httpSrv != nil {
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics server shutdown: %v", err)
			}
		}
		if db.Durable() {
			// Checkpoint + release the data directory; the WAL already
			// holds every committed mutation.
			if err := db.Close(); err != nil {
				log.Printf("data directory close failed: %v", err)
			} else {
				log.Printf("data directory checkpointed")
			}
		} else if *snapshot != "" {
			if err := saveSnapshot(db, *snapshot); err != nil {
				log.Printf("snapshot save failed: %v", err)
			} else {
				log.Printf("database saved to %s", *snapshot)
			}
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	httpWG.Wait()
	s := srv.Stats().Snapshot()
	log.Printf("served %d queries, %d rows streamed over %d fetches, %d connections",
		s.Queries, s.RowsStreamed, s.Fetches, s.ConnsAccepted)
}

// openDB opens the durable data directory when -data-dir is set
// (importing the snapshot into it on first boot), otherwise restores
// the snapshot into memory if it exists, otherwise opens empty.
func openDB(dataDir, snapPath, walSync string, poolPages int, checkpointMB int64, parallel int, reg *spatialtf.TelemetryRegistry) (*spatialtf.DB, error) {
	if dataDir == "" {
		if snapPath == "" {
			return spatialtf.Open(), nil
		}
		f, err := os.Open(snapPath)
		if os.IsNotExist(err) {
			log.Printf("snapshot %s not found; starting empty", snapPath)
			return spatialtf.Open(), nil
		}
		if err != nil {
			return nil, err
		}
		defer f.Close()
		db, err := spatialtf.Restore(f, parallel)
		if err != nil {
			return nil, fmt.Errorf("restore %s: %w", snapPath, err)
		}
		log.Printf("database restored from %s", snapPath)
		return db, nil
	}

	var sync spatialtf.SyncMode
	switch walSync {
	case "always":
		sync = spatialtf.SyncAlways
	case "batch":
		sync = spatialtf.SyncBatch
	case "off":
		sync = spatialtf.SyncOff
	default:
		return nil, fmt.Errorf("bad -wal-sync %q (want always|batch|off)", walSync)
	}
	db, err := spatialtf.OpenDir(dataDir, spatialtf.DirOptions{
		PoolPages:       poolPages,
		Sync:            sync,
		CheckpointBytes: checkpointMB << 20,
		Parallel:        parallel,
		Telemetry:       reg,
	})
	if err != nil {
		return nil, fmt.Errorf("open data dir %s: %w", dataDir, err)
	}
	if n := len(db.TableNames()); n > 0 {
		log.Printf("data directory %s opened (%d tables recovered)", dataDir, n)
		return db, nil
	}
	if snapPath != "" {
		imported, err := importSnapshot(db, snapPath, parallel)
		if err != nil {
			db.Close()
			return nil, err
		}
		if imported {
			log.Printf("snapshot %s imported into %s", snapPath, dataDir)
		}
	}
	return db, nil
}

// importSnapshot migrates a snapshot into an empty durable database:
// tables are copied row by row (rowids are NOT preserved — the snapshot
// format never had stable rowids) and indexes are recreated with their
// original parameters. Returns false if the snapshot does not exist.
func importSnapshot(db *spatialtf.DB, path string, parallel int) (bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	mem, err := spatialtf.Restore(f, parallel)
	if err != nil {
		return false, fmt.Errorf("restore %s: %w", path, err)
	}
	names := mem.TableNames()
	sort.Strings(names)
	for _, name := range names {
		src, err := mem.Table(name)
		if err != nil {
			return false, err
		}
		dst, err := db.CreateTable(name, src.Inner().Schema())
		if err != nil {
			return false, err
		}
		var insertErr error
		if err := src.Scan(func(_ spatialtf.RowID, row spatialtf.Row) bool {
			_, insertErr = dst.Insert(row...)
			return insertErr == nil
		}); err != nil {
			return false, err
		}
		if insertErr != nil {
			return false, fmt.Errorf("import table %q: %w", name, insertErr)
		}
	}
	metas, err := mem.IndexMetadata()
	if err != nil {
		return false, err
	}
	for _, m := range metas {
		opt := spatialtf.IndexOptions{
			Fanout:         m.Fanout,
			TilingLevel:    m.TilingLevel,
			InteriorEffort: m.InteriorEffort,
			Parallel:       parallel,
		}
		if m.Kind == spatialtf.Quadtree {
			opt.Bounds = m.Bounds
		}
		if _, err := db.CreateIndexOn(m.IndexName, m.TableName, m.ColumnName, m.Kind, opt); err != nil {
			return false, fmt.Errorf("import index %q: %w", m.IndexName, err)
		}
	}
	return true, nil
}

// saveSnapshot writes the database atomically and durably: temp file,
// fsync, rename, directory fsync — a crash mid-save leaves either the
// old snapshot or the new one, never a torn file.
func saveSnapshot(db *spatialtf.DB, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = db.Save(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadDataset parses name:n[:seed] and loads it, indexing the geometry
// column per kind. A table that already exists — recovered from a data
// directory — is left alone, so the same -load flags are safe across
// restarts.
func loadDataset(db *spatialtf.DB, spec, kind string, parallel int) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("bad -load %q (want name:n[:seed])", spec)
	}
	if t, err := db.Table(parts[0]); err == nil {
		log.Printf("table %s already holds %d rows; skipping -load %s", parts[0], t.Len(), spec)
		return nil
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return fmt.Errorf("bad -load count %q", parts[1])
	}
	seed := int64(1)
	if len(parts) == 3 {
		seed, err = strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad -load seed %q", parts[2])
		}
	}
	var ds spatialtf.Dataset
	switch parts[0] {
	case "counties":
		ds = spatialtf.Counties(n, seed)
	case "stars":
		ds = spatialtf.Stars(n, seed)
	case "blockgroups":
		ds = spatialtf.BlockGroups(n, seed)
	default:
		return fmt.Errorf("unknown dataset %q", parts[0])
	}
	t0 := time.Now()
	if _, err := db.LoadDataset(parts[0], ds); err != nil {
		return err
	}
	opt := spatialtf.IndexOptions{Parallel: parallel}
	switch kind {
	case "rtree":
		_, err = db.CreateIndex(parts[0]+"_idx", parts[0], spatialtf.RTree, opt)
	case "quadtree":
		opt.Bounds = spatialtf.World
		opt.TilingLevel = 8
		_, err = db.CreateIndex(parts[0]+"_idx", parts[0], spatialtf.Quadtree, opt)
	case "none":
	default:
		return fmt.Errorf("unknown -index kind %q", kind)
	}
	if err != nil {
		return err
	}
	log.Printf("loaded %s (%d rows, index=%s) in %s", parts[0], n, kind, time.Since(t0).Round(time.Millisecond))
	return nil
}
