package spatialtf

import (
	"testing"

	"spatialtf/internal/pager"
)

// fillSpatial populates a spatial table with a grid of small rects and
// returns the rowids in insert order.
func fillSpatial(t *testing.T, tab *Table, n int) []RowID {
	t.Helper()
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		x := float64(i%10) * 4
		y := float64(i/10) * 4
		id, err := tab.Add("row", MustRect(x, y, x+2, y+2))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		ids[i] = id
	}
	return ids
}

func TestOpenDirLifecycle(t *testing.T) {
	fs := pager.NewMemFS()
	db, err := OpenDir("data", DirOptions{fs: fs, PoolPages: 64})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	counties, err := db.CreateSpatialTable("counties")
	if err != nil {
		t.Fatalf("CreateSpatialTable: %v", err)
	}
	ids := fillSpatial(t, counties, 40)
	if _, err := db.CreateIndex("counties_idx", "counties", RTree, IndexOptions{}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	hits1, err := db.Relate("counties", "counties_idx", MustRect(0, 0, 9, 9), "anyinteract")
	if err != nil {
		t.Fatalf("Relate: %v", err)
	}
	if len(hits1) == 0 {
		t.Fatal("no hits before restart")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: tables bind to their page spaces, indexes rebuild from the
	// catalog, and rowids are stable (the whole point over Save/Restore).
	db2, err := OpenDir("data", DirOptions{fs: fs, PoolPages: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	c2, err := db2.Table("counties")
	if err != nil {
		t.Fatalf("Table after reopen: %v", err)
	}
	if c2.Len() != 40 {
		t.Fatalf("reopened table has %d rows, want 40", c2.Len())
	}
	for i, id := range ids {
		row, err := c2.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %v after reopen: %v", id, err)
		}
		if row[0].I != int64(i) {
			t.Fatalf("row %v id column = %d, want %d", id, row[0].I, i)
		}
	}
	hits2, err := db2.Relate("counties", "counties_idx", MustRect(0, 0, 9, 9), "anyinteract")
	if err != nil {
		t.Fatalf("Relate after reopen: %v", err)
	}
	if len(hits2) != len(hits1) {
		t.Fatalf("rebuilt index returns %d hits, want %d", len(hits2), len(hits1))
	}

	// Add keeps drawing fresh ids after reopen (sequence reseeds from
	// stored rows).
	id, err := c2.Add("late", MustRect(100, 100, 101, 101))
	if err != nil {
		t.Fatalf("Add after reopen: %v", err)
	}
	row, err := c2.Fetch(id)
	if err != nil {
		t.Fatalf("fetch late row: %v", err)
	}
	if row[0].I != 40 {
		t.Fatalf("post-reopen Add drew id %d, want 40", row[0].I)
	}
}

func TestOpenDirCrashDurability(t *testing.T) {
	fs := pager.NewMemFS()
	db, err := OpenDir("data", DirOptions{fs: fs, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	tab, err := db.CreateSpatialTable("stars")
	if err != nil {
		t.Fatalf("CreateSpatialTable: %v", err)
	}
	ids := fillSpatial(t, tab, 25)
	if err := tab.Delete(ids[3]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// SIGKILL: no Close, no Checkpoint; unsynced writes are lost.
	clone := fs.CrashClone(fs.CrashPoints(), false, true)

	db2, err := OpenDir("data", DirOptions{fs: clone, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	t2, err := db2.Table("stars")
	if err != nil {
		t.Fatalf("Table after crash: %v", err)
	}
	if t2.Len() != 24 {
		t.Fatalf("recovered %d rows, want 24", t2.Len())
	}
	if _, err := t2.Fetch(ids[3]); err == nil {
		t.Fatal("deleted row came back after crash recovery")
	}
	if _, err := t2.Fetch(ids[7]); err != nil {
		t.Fatalf("committed row lost in crash: %v", err)
	}
}

func TestOpenDirCatalogCorruptionDetected(t *testing.T) {
	fs := pager.NewMemFS()
	db, err := OpenDir("data", DirOptions{fs: fs})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if _, err := db.CreateSpatialTable("t"); err != nil {
		t.Fatalf("CreateSpatialTable: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a byte in the catalog body: reopen must refuse, not
	// misinterpret.
	f, err := fs.Open("data/catalog.bin")
	if err != nil {
		t.Fatalf("open catalog: %v", err)
	}
	size, _ := f.Size()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	buf[len(buf)/2] ^= 0xFF
	f.WriteAt(buf, 0)
	f.Sync()
	if _, err := OpenDir("data", DirOptions{fs: fs}); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}

func TestOpenDirSharedStoreSegregatesTables(t *testing.T) {
	fs := pager.NewMemFS()
	db, err := OpenDir("data", DirOptions{fs: fs})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer db.Close()
	a, err := db.CreateSpatialTable("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateSpatialTable("b")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave inserts so the two tables' pages interleave in the
	// shared page file; scans and counts must stay per-table.
	for i := 0; i < 30; i++ {
		if _, err := a.Add("a", MustRect(0, 0, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Add("b", MustRect(5, 5, 6, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 30 || b.Len() != 30 {
		t.Fatalf("table lengths %d/%d, want 30/30", a.Len(), b.Len())
	}
	seen := 0
	if err := a.Scan(func(_ RowID, row Row) bool {
		if row[1].S != "a" {
			t.Fatalf("table a scan surfaced row %q", row[1].S)
		}
		seen++
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if seen != 30 {
		t.Fatalf("table a scan saw %d rows, want 30", seen)
	}
}
