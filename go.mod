module spatialtf

go 1.24
