package spatialtf

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestAddNeverReusesIDs is the regression test for the id-collision
// bug: Add used to derive the id column from Len(), so after a Delete
// the next Add reused a live row's id. The sequence must be strictly
// monotonic across deletes.
func TestAddNeverReusesIDs(t *testing.T) {
	db := Open()
	tab, err := db.CreateSpatialTable("t")
	if err != nil {
		t.Fatal(err)
	}
	var rids []RowID
	for i := 0; i < 4; i++ {
		rid, err := tab.Add(fmt.Sprintf("row%d", i), MustRect(float64(i), 0, float64(i)+1, 1))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Delete a middle row; Len() drops to 3, so the buggy Add would hand
	// out id 3 again — colliding with row3's id.
	if err := tab.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Add("after-delete", MustRect(50, 50, 51, 51)); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]string{}
	if err := tab.Scan(func(_ RowID, row Row) bool {
		if prev, dup := seen[row[0].I]; dup {
			t.Errorf("id %d assigned to both %q and %q", row[0].I, prev, row[1].S)
		}
		seen[row[0].I] = row[1].S
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen[4] != "after-delete" {
		t.Errorf("post-delete Add got id %v, want 4 (ids seen: %v)", seen, seen)
	}
}

// TestAddSeedsFromExistingRows: on a table filled by LoadDataset (or a
// restored snapshot), the Add sequence starts past the largest stored
// id instead of colliding with it.
func TestAddSeedsFromExistingRows(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("c", Counties(10, 301)); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Table("c")
	if err != nil {
		t.Fatal(err)
	}
	maxID := int64(-1)
	tab.Scan(func(_ RowID, row Row) bool {
		if row[0].I > maxID {
			maxID = row[0].I
		}
		return true
	})
	rid, err := tab.Add("added", MustRect(1, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	row, err := tab.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != maxID+1 {
		t.Fatalf("Add on loaded table got id %d, want %d", row[0].I, maxID+1)
	}
}

// relateNames runs a window query and returns the sorted matching
// names, so result comparisons are stable across rowid assignment.
func relateNames(t *testing.T, db *DB, table, index string, window Geometry) []string {
	t.Helper()
	tab, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := db.Relate(table, index, window, "anyinteract")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(hits))
	for _, id := range hits {
		row, err := tab.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, row[1].S)
	}
	sort.Strings(names)
	return names
}

// joinNamePairs collects a self-join as sorted name pairs.
func joinNamePairs(t *testing.T, db *DB, table, index string) []string {
	t.Helper()
	tab, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.SpatialJoin(table, index, table, index, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	name := func(id RowID) string {
		row, err := tab.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		return row[1].S
	}
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, name(p.A)+"|"+name(p.B))
	}
	sort.Strings(out)
	return out
}

// TestSnapshotRoundTripWithDeletes saves and restores a database with
// an R-tree, a quadtree, and deleted rows, and asserts query RESULTS
// (by name, not rowid) are identical before and after.
func TestSnapshotRoundTripWithDeletes(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("counties", Counties(80, 811)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("c_rt", "counties", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("c_qt", "counties", Quadtree,
		IndexOptions{TilingLevel: 6, Bounds: World}); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Table("counties")
	if err != nil {
		t.Fatal(err)
	}
	// Delete every fifth row through both live indexes.
	var victims []RowID
	i := 0
	tab.Scan(func(id RowID, _ Row) bool {
		if i%5 == 0 {
			victims = append(victims, id)
		}
		i++
		return true
	})
	for _, id := range victims {
		if err := tab.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	windows := []Geometry{
		MustRect(0, 0, 500, 500),
		MustRect(300, 300, 700, 700),
		MustRect(0, 0, 1000, 1000),
	}
	for _, idx := range []string{"c_rt", "c_qt"} {
		for wi, w := range windows {
			orig := relateNames(t, db, "counties", idx, w)
			got := relateNames(t, restored, "counties", idx, w)
			if len(orig) == 0 {
				t.Fatalf("%s window %d matched nothing; test is vacuous", idx, wi)
			}
			if !equalStrings(orig, got) {
				t.Errorf("%s window %d: restored results differ\norig: %v\ngot:  %v", idx, wi, orig, got)
			}
		}
	}
	origJoin := joinNamePairs(t, db, "counties", "c_rt")
	gotJoin := joinNamePairs(t, restored, "counties", "c_rt")
	if len(origJoin) == 0 || !equalStrings(origJoin, gotJoin) {
		t.Errorf("restored join differs: %d pairs vs %d", len(origJoin), len(gotJoin))
	}
	// Deleted rows stayed deleted.
	rtab, _ := restored.Table("counties")
	if rtab.Len() != tab.Len() {
		t.Errorf("restored row count %d, want %d", rtab.Len(), tab.Len())
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentReadersWithWriter hammers Relate and SpatialJoin from
// several goroutines while another goroutine inserts rows, under -race.
// Join cursors pin their operand R-trees, so every cursor drains a
// consistent tree while the writer waits its turn.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := Open()
	if _, err := db.LoadDataset("counties", Counties(48, 907)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("counties_idx", "counties", RTree, IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Table("counties")
	if err != nil {
		t.Fatal(err)
	}
	const readers = 6
	const rounds = 8
	var readerWg, writerWg sync.WaitGroup
	stop := make(chan struct{})
	writerWg.Add(1)
	go func() { // writer
		defer writerWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := float64(i % 800)
			if _, err := tab.Add(fmt.Sprintf("w%d", i), MustRect(o, o, o+10, o+10)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			for round := 0; round < rounds; round++ {
				if r%2 == 0 {
					hits, err := db.Relate("counties", "counties_idx",
						MustRect(0, 0, 1000, 1000), "anyinteract")
					if err != nil {
						t.Errorf("reader %d relate: %v", r, err)
						return
					}
					if len(hits) < 48 {
						t.Errorf("reader %d: %d hits, want >= initial 48", r, len(hits))
						return
					}
				} else {
					cur, err := db.SpatialJoin("counties", "counties_idx",
						"counties", "counties_idx", JoinOptions{})
					if err != nil {
						t.Errorf("reader %d join: %v", r, err)
						return
					}
					n := 0
					for {
						_, ok, err := cur.Next()
						if err != nil {
							t.Errorf("reader %d join next: %v", r, err)
							cur.Close()
							return
						}
						if !ok {
							break
						}
						n++
					}
					cur.Close()
					if n < 48 {
						t.Errorf("reader %d: self-join streamed %d pairs, want >= row count", r, n)
						return
					}
				}
			}
		}(r)
	}
	// The writer keeps inserting for the readers' whole lifetime.
	readerWg.Wait()
	close(stop)
	writerWg.Wait()
}
