package spatialtf

import (
	"fmt"

	"spatialtf/internal/datagen"
)

// Dataset is a generated geometry collection; see the Counties, Stars
// and BlockGroups generators, which synthesize stand-ins for the
// paper's proprietary evaluation datasets.
type Dataset = datagen.Dataset

// World is the coordinate domain of the generated datasets, to be used
// as quadtree Bounds.
var World = datagen.World

// Counties generates n contiguous county-like polygons (the paper's
// 3230-county dataset is Counties(3230, seed)).
func Counties(n int, seed int64) Dataset { return datagen.Counties(n, seed) }

// Stars generates n clustered small polygons (the paper's 250K star
// dataset is Stars(250000, seed)).
func Stars(n int, seed int64) Dataset { return datagen.Stars(n, seed) }

// BlockGroups generates n complex polygons (the paper's 230K US block
// groups dataset is BlockGroups(230000, seed)).
func BlockGroups(n int, seed int64) Dataset { return datagen.BlockGroups(n, seed) }

// LoadDataset creates a spatial table named ds.Name (or tableName if
// non-empty) and inserts every geometry, returning the table handle.
func (db *DB) LoadDataset(tableName string, ds Dataset) (*Table, error) {
	name := tableName
	if name == "" {
		name = ds.Name
	}
	t, err := db.CreateSpatialTable(name)
	if err != nil {
		return nil, err
	}
	for i, g := range ds.Geoms {
		if _, err := t.Insert(Int(int64(i)), Str(fmt.Sprintf("%s-%d", ds.Name, i)), Geom(g)); err != nil {
			return nil, fmt.Errorf("spatialtf: load %q row %d: %w", name, i, err)
		}
	}
	return t, nil
}
