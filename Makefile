# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, the spatiallint analyzer suite, the complete test suite under
# the race detector, a fuzz smoke pass over the wire/SQL decoders, and a
# one-iteration benchmark smoke run (so benchmarks cannot silently rot).

GO ?= go

.PHONY: ci fmt-check vet build lint test race race-hot fuzz-smoke bench bench-smoke bench-wire bench-record obs-smoke crash-smoke cluster-smoke

ci: fmt-check vet build lint race-hot race fuzz-smoke bench-smoke obs-smoke crash-smoke cluster-smoke

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The project's own analyzer suite (cmd/spatiallint): pin/Unpin pairing,
# cursor Close discipline, locks across blocking calls (interprocedural),
# lock-order cycle detection, atomic/plain mixed access, discarded wire
# errors, exact float comparison, decoded-size taint tracking, goroutine
# accounting, release-func summaries, and hot-path allocation findings.
# Zero findings required.
# Timing budget, enforced: the CFG/summary/escape engine must keep a
# warm full-repo run under 10s. The binary is built first so the budget
# times the analysis, not the compiler.
LINT_BUDGET_SECS ?= 10
lint:
	@$(GO) build -o /tmp/spatiallint.$$$$ ./cmd/spatiallint; \
	bin=/tmp/spatiallint.$$$$; \
	start=$$(date +%s); \
	$$bin ./... ; status=$$?; \
	end=$$(date +%s); rm -f $$bin; \
	elapsed=$$((end - start)); \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECS) ]; then \
		echo "lint: FAIL: spatiallint took $${elapsed}s, budget $(LINT_BUDGET_SECS)s"; exit 1; \
	fi; \
	echo "lint: clean in $${elapsed}s (budget $(LINT_BUDGET_SECS)s)"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race lane over the concurrency-heavy surfaces — the root
# package's reader/writer tests, the pager's checkpoint-under-load
# churn, the grid join's atomic tile claiming, the server, and the
# parallel join — so races there fail fast before the full -race sweep.
race-hot:
	$(GO) test -race -run 'TestConcurrent|TestSnapshot' .
	$(GO) test -race -run 'TestCheckpointUnderLoad' ./internal/pager
	$(GO) test -race -run 'TestGridJoinRace' ./internal/sjoin
	$(GO) test -race ./internal/server ./internal/sjoin

# A few seconds of coverage-guided fuzzing per target: enough to catch
# decoder regressions that panic or over-allocate on the seed corpus's
# immediate neighbourhood. Long runs stay a manual `go test -fuzz` away.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzWireDecode -fuzztime 5s ./internal/wire
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime 5s ./internal/sqlmini
	$(GO) test -run NONE -fuzz FuzzWALDecode -fuzztime 5s ./internal/pager

bench:
	$(GO) test -bench=. -benchmem ./...

# Compile-and-run smoke over every benchmark: one iteration each, no
# timing fidelity, just proof they still execute.
# The trailing lane re-runs the grid-partitioned join benches at 2
# iterations: tile claiming and the per-tile skew metrics only exercise
# interesting paths once the fixtures are warm, so give them one warm
# pass beyond what the full 1x sweep above provides.
# The allocs/op lane re-runs the two headline join benchmarks with
# -benchmem so an allocation regression on the fetch/sweep hot paths
# shows up in CI output next to the hotalloc lint (see DESIGN.md §16).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -count 1 ./...
	$(GO) test -run NONE -bench 'Table2GridJoin|AblationGridTiles|AblationGridVsSubtree' -benchtime 2x -count 1 .
	$(GO) test -run NONE -bench 'Table2IndexJoin$$|Table2GridJoin' -benchmem -benchtime 2x -count 1 .

# End-to-end observability check: boot spatialserverd with -metrics-addr,
# run a join over the wire, scrape /metrics and assert the core series
# moved, hit pprof, then SIGTERM and require a clean drain.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end crash recovery: boot spatialserverd on a -data-dir, load
# and mutate over the wire, SIGKILL, reboot on the same directory, and
# require identical counts and join answers after WAL redo.
crash-smoke:
	./scripts/crash_smoke.sh

# End-to-end cluster check: three shards behind spatialrouterd must
# answer counts, a cross-shard join, and a window query exactly like a
# single node; SIGKILL one shard and require typed degradation (partial
# result on streams, hard failure on counts); clean SIGTERM drain.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Wire-protocol streaming throughput (loopback server + client).
bench-wire:
	$(GO) test -run NONE -bench BenchmarkWireJoinStream -benchmem .

# Full benchmark sweep recorded as NDJSON (one `go test -json` event
# per line) for before/after comparison; writes BENCH_pr3.json unless an
# output file is given: `make bench-record BENCH_OUT=BENCH_x.json`.
bench-record:
	./scripts/bench_record.sh $(BENCH_OUT)
