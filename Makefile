# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, and the complete test suite under the race detector.

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-wire

ci: fmt-check vet build race

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Wire-protocol streaming throughput (loopback server + client).
bench-wire:
	$(GO) test -run NONE -bench BenchmarkWireJoinStream -benchmem .
