# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, the complete test suite under the race detector, and a
# one-iteration benchmark smoke run (so benchmarks cannot silently rot).

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-smoke bench-wire bench-record

ci: fmt-check vet build race bench-smoke

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Compile-and-run smoke over every benchmark: one iteration each, no
# timing fidelity, just proof they still execute.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x -count 1 ./...

# Wire-protocol streaming throughput (loopback server + client).
bench-wire:
	$(GO) test -run NONE -bench BenchmarkWireJoinStream -benchmem .

# Full benchmark sweep recorded as NDJSON (one `go test -json` event
# per line) for before/after comparison; writes BENCH_pr2.json.
bench-record:
	./scripts/bench_record.sh
