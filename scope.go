package spatialtf

import (
	"spatialtf/internal/sjoin"
)

// ClusterScope restricts query evaluation to the results one shard of a
// space-partitioned cluster owns. The cluster lays a fixed Cols×Rows
// grid over the world bounds (the sjoin two-layer grid, reused as the
// ownership function); tile (col, row) belongs to shard
// (row*Cols+col) % NShards. Rows are replicated to every shard whose
// tiles their margin-grown MBR touches, so each shard can answer any
// query over its own tiles; a query scattered to all shards with
// per-shard scopes returns every result exactly once, because every
// result has exactly one reference point and that point lies in exactly
// one tile:
//
//   - plain scan: the clamped bottom-left corner of the row's MBR
//   - window/distance predicate: the bottom-left corner of the
//     intersection of the row's MBR with the query MBR expanded by the
//     search distance (a point inside the row's MBR, so no margin is
//     needed)
//   - join pair: the bottom-left corner of the intersection of the
//     first MBR expanded by the join distance with the second MBR
//     (inside the second row's MBR and within the join distance of the
//     first row's, so the replication margin must cover the distance)
//
// The zero ClusterScope is not valid; build one with NewClusterScope.
type ClusterScope struct {
	// Grid is the cluster's tile grid over the world bounds. All shards
	// and the coordinator must agree on it exactly.
	Grid sjoin.Grid
	// NShards is the cluster size; Shard is this scope's shard index in
	// [0, NShards).
	NShards int
	Shard   int
}

// NewClusterScope builds the scope of one shard of an n-shard cluster
// gridded cols×rows over bounds.
func NewClusterScope(bounds MBR, cols, rows, nShards, shard int) *ClusterScope {
	return &ClusterScope{
		Grid:    sjoin.NewGrid(bounds, cols, rows),
		NShards: nShards,
		Shard:   shard,
	}
}

// TileOwner returns the shard owning tile (col, row).
func (s *ClusterScope) TileOwner(col, row int) int {
	return (row*s.Grid.Cols + col) % s.NShards
}

// OwnsPoint reports whether the reference point (x, y) falls in a tile
// this shard owns. Coordinates outside the grid clamp to the border
// tiles, so ownership is total over the plane and identical on every
// shard.
func (s *ClusterScope) OwnsPoint(x, y float64) bool {
	return s.TileOwner(s.Grid.ColOf(x), s.Grid.RowOf(y)) == s.Shard
}

// OwnsMBR reports whether this shard owns a scanned row with the given
// MBR: the reference point of a plain scan is the MBR's bottom-left
// corner.
func (s *ClusterScope) OwnsMBR(m MBR) bool {
	return s.OwnsPoint(m.MinX, m.MinY)
}

// OwnsWindow reports whether this shard owns row MBR r as a result of a
// window/distance predicate with query MBR q and search distance d
// (0 for a pure relate). The reference point is the bottom-left corner
// of r ∩ q.Expand(d), which lies inside r — so every shard holding a
// replica of r can evaluate this identically, margin-free.
func (s *ClusterScope) OwnsWindow(r, q MBR, d float64) bool {
	x := q.MinX - d
	if r.MinX > x {
		x = r.MinX
	}
	y := q.MinY - d
	if r.MinY > y {
		y = r.MinY
	}
	return s.OwnsPoint(x, y)
}

// OwnsPair reports whether this shard owns join pair (a, b) under join
// distance d: the sjoin reference-point rule, shared with the in-grid
// A/B/C/D dedup.
func (s *ClusterScope) OwnsPair(a, b MBR, d float64) bool {
	return s.OwnsPoint(sjoin.PairRefPoint(a, b, d))
}
